"""Tests for the ADXL311 model and the calibration sweep (Fig 4/5 code)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sensors.adxl311 import ADXL311
from repro.sensors.calibration import calibrate, sweep_environments
from repro.sensors.gp2d120 import GP2D120
from repro.sensors.surfaces import AMBIENT_CONDITIONS, CLOTHING


class TestADXL311:
    def test_flat_attitude_reads_zero_g(self):
        accel = ADXL311(rng=None)
        gx, gy = accel.acceleration_g(0.0, 0.0)
        assert gx == 0.0
        assert gy == 0.0

    def test_ninety_degree_tilt_reads_one_g(self):
        accel = ADXL311(rng=None)
        gx, gy = accel.acceleration_g(math.pi / 2, 0.0)
        assert gy == pytest.approx(1.0)
        assert gx == pytest.approx(0.0)

    def test_zero_g_voltage_at_mid_supply(self):
        accel = ADXL311(rng=None)
        vx, vy = accel.output_voltages(0.0, 0.0)
        assert vx == pytest.approx(accel.params.zero_g_voltage)
        assert vy == pytest.approx(accel.params.zero_g_voltage)

    def test_tilt_roundtrip(self):
        accel = ADXL311(rng=None)
        for pitch, roll in ((0.2, -0.4), (0.0, 0.7), (-0.5, 0.0)):
            vx, vy = accel.output_voltages(pitch, roll)
            est_roll, est_pitch = accel.tilt_from_voltages(vx, vy)
            assert est_pitch == pytest.approx(pitch, abs=1e-6)
            assert est_roll == pytest.approx(roll, abs=1e-6)

    def test_range_clipping(self):
        accel = ADXL311(rng=None)
        gx, _ = accel.acceleration_g(0.0, math.pi / 2, linear_accel_g=(5.0, 0.0))
        assert gx == accel.params.range_g

    def test_noise_present_with_rng(self):
        accel = ADXL311(rng=np.random.default_rng(0))
        readings = {accel.output_voltages(0.0, 0.0)[0] for _ in range(10)}
        assert len(readings) > 1


class TestCalibration:
    def test_sweep_covers_range_in_order(self, rng):
        sensor = GP2D120.specimen(rng)
        result = calibrate(sensor, readings_per_point=4)
        distances = result.distances
        assert distances[0] == pytest.approx(4.0)
        assert distances[-1] >= 29.0
        assert (np.diff(distances) > 0).all()

    def test_fit_quality_matches_figure_4(self, rng):
        sensor = GP2D120.specimen(rng)
        result = calibrate(sensor, readings_per_point=16)
        assert result.hyperbola.r2 > 0.999
        assert result.max_abs_residual() < 0.05  # volts

    def test_log_fit_matches_figure_5(self, rng):
        sensor = GP2D120.specimen(rng)
        result = calibrate(sensor, readings_per_point=16)
        assert result.power_law.r2_log > 0.99

    def test_rejects_foldback_distances(self, rng):
        sensor = GP2D120.specimen(rng)
        with pytest.raises(ValueError):
            calibrate(sensor, distances_cm=np.array([2.0, 10.0, 20.0]))

    def test_std_reported_per_point(self, rng):
        sensor = GP2D120.specimen(rng)
        result = calibrate(sensor, readings_per_point=8)
        assert all(s.std_voltage >= 0 for s in result.samples)
        assert any(s.std_voltage > 0 for s in result.samples)

    def test_environment_sweep_keys(self, rng):
        surfaces = {k: CLOTHING[k] for k in ("white_shirt", "black_jacket")}
        ambients = {k: AMBIENT_CONDITIONS[k] for k in ("indoor",)}
        results = sweep_environments(rng, surfaces, ambients, readings_per_point=2)
        assert set(results) == {
            ("white_shirt", "indoor"),
            ("black_jacket", "indoor"),
        }

    def test_environment_sweep_same_specimen(self, rng):
        """Differences must come from the environment, not the part."""
        surfaces = {k: CLOTHING[k] for k in ("white_shirt", "gray_fleece")}
        ambients = {"indoor": AMBIENT_CONDITIONS["indoor"]}
        results = sweep_environments(rng, surfaces, ambients, readings_per_point=8)
        a = results[("white_shirt", "indoor")].hyperbola
        b = results[("gray_fleece", "indoor")].hyperbola
        assert a.a == pytest.approx(b.a, rel=0.1)

"""REP009 — scalar↔vectorized dual paths must stay paired and tested.

The perf work (PR 4) and the batch engine (PR 7) deliberately maintain
*two* implementations of the hot paths: a scalar reference (the oracle)
and a vectorized/batched fast path, with bit-equality tests welding
them together.  That discipline rots silently — someone renames the
scalar method, drops it from ``__all__``, or deletes the equality test,
and the oracle quietly stops guarding anything.  This rule keeps the
registry of known pairs honest, project-wide:

* both halves of each pair still exist in their module,
* the owning top-level symbol is exported (``__all__`` or public name),
* at least one test file references **both** halves by name (the
  bit-equality test).

Pairs live in :data:`PARITY_PAIRS`.  Adding a new dual path means
adding one line here — which is exactly the point: the registry *is*
the documentation of which fast paths carry oracles.

Escape hatch: deleting a dual path legitimately (scalar path retired)
means removing its registry line in the same commit; a transitional
state can be baselined with a justification.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.devtools.base import ProjectRule
from repro.devtools.findings import Finding, Severity

if TYPE_CHECKING:
    from repro.devtools.engine import ProjectView

__all__ = ["DualPathParityRule", "PARITY_PAIRS", "ParityPair"]


@dataclass(frozen=True)
class ParityPair:
    """One scalar↔vectorized pair the tree promises to keep bit-equal.

    ``scalar``/``vector`` are symbol names within ``module`` — dotted
    for methods (``"GP2D120._measure"``), plain for top-level classes
    (``"ScalarDeviceEngine"``).
    """

    module: str
    scalar: str
    vector: str
    note: str = ""


#: Every dual path in the tree.  REP009 verifies each entry exists, is
#: exported, and has a test referencing both names.
PARITY_PAIRS: tuple[ParityPair, ...] = (
    ParityPair(
        "sensors/gp2d120.py",
        "GP2D120.ideal_voltage",
        "GP2D120.ideal_voltage_array",
        "PR 4 vectorized transfer curve",
    ),
    ParityPair(
        "sensors/gp2d120.py",
        "GP2D120.output_voltage",
        "GP2D120.output_voltage_array",
        "PR 4 vectorized noisy output incl. zero-order hold",
    ),
    ParityPair(
        "sensors/gp2d120.py",
        "GP2D120._measure",
        "GP2D120.measure_array",
        "PR 4 vectorized measurement incl. RNG stream equality",
    ),
    ParityPair(
        "signal/filters.py",
        "ExponentialMovingAverage.update",
        "ExponentialMovingAverage.update_batch",
        "PR 4 filter fast path",
    ),
    ParityPair(
        "signal/filters.py",
        "MovingAverage.update",
        "MovingAverage.update_batch",
        "PR 4 filter fast path",
    ),
    ParityPair(
        "signal/filters.py",
        "MedianFilter.update",
        "MedianFilter.update_batch",
        "PR 4 filter fast path",
    ),
    ParityPair(
        "signal/filters.py",
        "HysteresisQuantizer.update",
        "HysteresisQuantizer.update_batch",
        "PR 4 filter fast path",
    ),
    ParityPair(
        "signal/filters.py",
        "RateLimiter.update",
        "RateLimiter.update_batch",
        "PR 4 filter fast path",
    ),
    ParityPair(
        "core/batch.py",
        "ScalarDeviceEngine",
        "DeviceBatch",
        "PR 7 SoA engine vs scalar oracle (stepping code written twice"
        " on purpose)",
    ),
)


def _base_and_leaf(symbol: str) -> tuple[str, str]:
    base, _, leaf = symbol.partition(".")
    return base, (leaf or base)


class DualPathParityRule(ProjectRule):
    """Verify the scalar↔vectorized pair registry project-wide."""

    rule_id = "REP009"
    title = "registered scalar↔vectorized pairs exist, are exported, and share a bit-equality test"
    severity = Severity.ERROR
    rationale = (
        "The tree keeps deliberate duplicate implementations — a scalar"
        " oracle next to each vectorized/batched fast path (PR 4, PR 7) —"
        " welded together by bit-equality tests.  A rename, an `__all__`"
        " drop, or a deleted test silently disarms the oracle; the"
        " registry in `repro/devtools/rules/parity.py` plus this check"
        " keeps every pair existing, exported, and referenced by one test"
        " file."
    )
    example = (
        "# parity.py registers (\"core/batch.py\", \"ScalarDeviceEngine\","
        " \"DeviceBatch\")\n"
        "# ...but core/batch.py no longer defines ScalarDeviceEngine"
    )
    escape_hatch = (
        "Retiring a dual path legitimately means deleting its"
        " PARITY_PAIRS entry in the same commit; transitional states can"
        " be baselined with a justification."
    )
    #: The registry (overridable in tests / fixture runs).
    pairs: ClassVar[tuple[ParityPair, ...]] = PARITY_PAIRS

    def run_project(self, view: "ProjectView") -> list[Finding]:
        findings: list[Finding] = []
        for pair in self.pairs:
            facts = view.graph.files.get(pair.module)
            if facts is None:
                continue  # pair's module not in the linted tree (fixtures)
            for half, symbol in (("scalar", pair.scalar), ("vector", pair.vector)):
                if symbol not in facts.symbols:
                    findings.append(
                        self._finding(
                            view,
                            pair,
                            1,
                            f"registered {half} path `{symbol}` is missing"
                            f" from {pair.module}; update the pair or"
                            " delete its PARITY_PAIRS entry in the same"
                            " commit",
                        )
                    )
                    continue
                base, _leaf = _base_and_leaf(symbol)
                exported = (
                    base in facts.exports
                    if facts.exports is not None
                    else not base.startswith("_")
                )
                if not exported:
                    findings.append(
                        self._finding(
                            view,
                            pair,
                            facts.symbols[symbol].lineno,
                            f"`{base}` (owner of {half} path `{symbol}`)"
                            f" is not exported from {pair.module}"
                            " (missing from __all__): dual paths are"
                            " public API",
                        )
                    )
            if (
                pair.scalar in facts.symbols
                and pair.vector in facts.symbols
                and view.tests_texts is not None
            ):
                tokens = self._tokens(pair)
                if not any(
                    all(
                        re.search(rf"\b{re.escape(token)}\b", text)
                        for token in tokens
                    )
                    for text in view.tests_texts.values()
                ):
                    findings.append(
                        self._finding(
                            view,
                            pair,
                            facts.symbols[pair.scalar].lineno,
                            "no single test file references both halves of"
                            f" the pair ({', '.join(sorted(tokens))}): the"
                            " bit-equality test welding"
                            f" `{pair.scalar}` to `{pair.vector}` is gone",
                        )
                    )
        return findings

    @staticmethod
    def _tokens(pair: ParityPair) -> frozenset[str]:
        scalar_base, scalar_leaf = _base_and_leaf(pair.scalar)
        vector_base, vector_leaf = _base_and_leaf(pair.vector)
        return frozenset(
            {scalar_base, scalar_leaf, vector_base, vector_leaf}
        )

    def _finding(
        self, view: "ProjectView", pair: ParityPair, line: int, message: str
    ) -> Finding:
        snippet = ""
        source = view.source_for(pair.module)
        if source is not None:
            lines = source.splitlines()
            if 1 <= line <= len(lines):
                snippet = lines[line - 1].strip()
        return Finding(
            rule=self.rule_id,
            path=pair.module,
            line=line,
            col=0,
            message=message,
            severity=self.severity,
            snippet=snippet,
        )

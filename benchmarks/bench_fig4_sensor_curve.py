"""FIG4 — regenerate the sensor voltage-vs-distance curve of Figure 4."""

from __future__ import annotations

from repro.experiments import run_fig4


def test_bench_fig4(benchmark, report):
    result, calibration = benchmark.pedantic(
        run_fig4, kwargs={"seed": 0, "readings_per_point": 16},
        rounds=3, iterations=1,
    )
    report(result)
    assert calibration.hyperbola.r2 > 0.999

"""Core DistScroll contribution: islands, menus, firmware, device facade."""

from repro.core.config import DeviceConfig, ScrollDirection
from repro.core.device import DistScroll
from repro.core.events import (
    ButtonEvent,
    ChunkChanged,
    EntryActivated,
    FastScroll,
    HighlightChanged,
    InteractionEvent,
    SubmenuEntered,
    SubmenuLeft,
    decode_event,
)
from repro.core.firmware import Firmware
from repro.core.islands import Island, IslandMap, Placement, build_island_map
from repro.core.menu import MenuCursor, MenuEntry, build_menu, flatten_paths

__all__ = [
    "DeviceConfig",
    "ScrollDirection",
    "DistScroll",
    "ButtonEvent",
    "ChunkChanged",
    "EntryActivated",
    "FastScroll",
    "HighlightChanged",
    "InteractionEvent",
    "SubmenuEntered",
    "SubmenuLeft",
    "decode_event",
    "Firmware",
    "Island",
    "IslandMap",
    "Placement",
    "build_island_map",
    "MenuCursor",
    "MenuEntry",
    "build_menu",
    "flatten_paths",
]

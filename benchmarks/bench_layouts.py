"""ABL-LAYOUT — the §6 button-design study the authors promised."""

from __future__ import annotations

from repro.experiments import run_layouts


def test_bench_layouts(benchmark, report):
    result = benchmark.pedantic(
        run_layouts,
        kwargs={"seed": 1, "n_users": 8, "n_trials": 6},
        rounds=1,
        iterations=1,
    )
    report(result)
    rows = {(r[0], r[1]): r for r in result.rows}
    # The large button eliminates mitten fumbles.
    assert (
        rows[("single-large-button", "arctic")][3]
        < rows[("prototype-3-button", "arctic")][3]
    )

"""REP005 — optional fault hooks must be null-checked before calling.

Every injectable hardware model exposes a ``fault_hook`` attribute that
defaults to ``None`` and is only populated when a
:class:`~repro.faults.FaultPlan` is installed.  The un-faulted path is
the common one, so an unguarded ``self.fault_hook(...)`` is a
``TypeError: 'NoneType' object is not callable`` waiting for the first
clean-hardware run that reaches it.

Recognised guard shapes (all used in the hardware layer today)::

    if self.fault_hook is not None:
        self.fault_hook(...)                       # guarded if-body

    if self.fault_hook is not None and self.fault_hook():   # and-chain
        ...

    x = self.fault_hook() if self.fault_hook is not None else None  # ifexp

Calls in an ``else`` branch of a guard, or with no guard in any
enclosing ``if`` / ``and`` / conditional expression, are flagged.
"""

from __future__ import annotations

import ast

from repro.devtools.base import Rule

__all__ = ["FaultHookGuardRule"]

#: Attribute/name identifiers treated as optional fault hooks.
_HOOK_NAMES = frozenset({"fault_hook"})

#: Node types that delimit the guard search (a guard outside the current
#: function cannot protect a call inside it).
_BOUNDARIES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
    ast.Module,
)


def _is_hook_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _HOOK_NAMES
    if isinstance(node, ast.Name):
        return node.id in _HOOK_NAMES
    return False


def _is_guard(expr: ast.AST) -> bool:
    """Whether ``expr`` establishes that a fault hook is callable."""
    # `hook is not None`  /  `hook != None`
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1:
        op = expr.ops[0]
        if isinstance(op, (ast.IsNot, ast.NotEq)):
            left, right = expr.left, expr.comparators[0]
            none_side = (
                isinstance(right, ast.Constant) and right.value is None
            ) or (isinstance(left, ast.Constant) and left.value is None)
            hook_side = _is_hook_expr(left) or _is_hook_expr(right)
            return none_side and hook_side
        return False
    # bare truthiness: `if self.fault_hook:`
    if _is_hook_expr(expr):
        return True
    # `callable(self.fault_hook)`
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "callable"
        and expr.args
        and _is_hook_expr(expr.args[0])
    ):
        return True
    # `A and B`: guarded if any conjunct is a guard.
    if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.And):
        return any(_is_guard(value) for value in expr.values)
    return False


class FaultHookGuardRule(Rule):
    """Flag calls to optional fault hooks with no enclosing null check."""

    rule_id = "REP005"
    title = "optional fault hooks must be null-checked before calling"
    rationale = (
        "Fault-injection hooks are optional seams threaded through the"
        " hardware models (PR 1): calling one unguarded crashes every"
        " non-fault run with an `AttributeError` on `None`, and the crash"
        " only reproduces when the hook is absent — the exact inverse of"
        " the configuration being tested."
    )
    example = "self._fault_hook.on_sample(value)  # hook may be None"
    escape_hatch = (
        "Guard with `if self._fault_hook is not None:` (or an early"
        " return); call sites where the hook is provably always set are"
        " baselined with a justification."
    )

    def visit_Call(self, node: ast.Call) -> None:
        if _is_hook_expr(node.func) and not self._guarded(node):
            self.report(
                node,
                f"`{ast.unparse(node.func)}(...)` without a None guard:"
                " fault hooks default to None on un-faulted hardware —"
                " wrap the call in `if ... is not None`",
            )
        self.generic_visit(node)

    def _guarded(self, call: ast.Call) -> bool:
        """Walk enclosing nodes innermost-out looking for a guard."""
        child: ast.AST = call
        for parent in reversed(self.ancestors):
            if isinstance(parent, _BOUNDARIES):
                return False
            if isinstance(parent, ast.BoolOp) and isinstance(
                parent.op, ast.And
            ):
                # `guard and ... call ...`: conjuncts left of the one
                # containing the call run first and short-circuit.
                for value in parent.values:
                    if value is child or self._contains(value, call):
                        break
                    if _is_guard(value):
                        return True
            elif isinstance(parent, ast.IfExp):
                if self._under(parent.body, call) and _is_guard(parent.test):
                    return True
            elif isinstance(parent, ast.If):
                in_body = any(
                    self._under(stmt, call) for stmt in parent.body
                )
                if in_body and _is_guard(parent.test):
                    return True
            elif isinstance(parent, ast.While):
                in_body = any(
                    self._under(stmt, call) for stmt in parent.body
                )
                if in_body and _is_guard(parent.test):
                    return True
            child = parent
        return False

    @staticmethod
    def _contains(tree: ast.AST, target: ast.AST) -> bool:
        return any(node is target for node in ast.walk(tree))

    @classmethod
    def _under(cls, tree: ast.AST, target: ast.AST) -> bool:
        return cls._contains(tree, target)

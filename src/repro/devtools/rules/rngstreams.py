"""REP006 — SeedSequence spawn-key streams must not collide.

The batched engine (PR 7) and the persona engine (PR 6) both derive
dedicated RNG streams via ``SeedSequence(entropy, spawn_key=(DOMAIN,
...))``.  Spawn keys are just tuples: two modules that pick the same
first element and overlapping trailing elements silently share bit
streams, coupling experiments that must be independent — a failure mode
that is invisible until a golden test diverges.  The fix is a registry:
every stream domain is an upper-case integer constant declared in
``repro/sim/streams.py``, and call sites must use the registry constant
(resolved across modules through the import graph, so aliasing is
fine).

The rule also flags *data-dependent draw counts* outside the approved
per-sample pattern: a ``while`` loop whose condition depends on a drawn
value and whose body draws again (rejection sampling) makes the number
of stream consumptions depend on the data, which breaks the
scalar↔vectorized bit-equality discipline (PR 4 hit exactly this in the
ADC corruption gate, and PR 7 had to pre-draw per sample because of
it).  The approved pattern is one-draw-per-sample with the loop bound
known before drawing; anything else needs an inline waiver.

Escape hatch: ``# reprolint: allow REP006 (reason)`` on the flagged
line or the line above — the reason is mandatory.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.base import LintContext, Rule
from repro.devtools.dataflow import FunctionFlow, is_rng_draw, iter_function_defs, names_in
from repro.devtools.findings import Finding
from repro.devtools.graph import (
    ProjectGraph,
    extract_facts,
    registry_path,
    resolve_spawn_sites,
    stream_registry,
)

__all__ = ["RngStreamCollisionRule"]


class _Loc:
    """A minimal location carrier for facts-derived findings."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


class RngStreamCollisionRule(Rule):
    """Flag unregistered, literal, or colliding spawn-key stream domains."""

    rule_id = "REP006"
    title = "SeedSequence spawn-key domains must come from the sim/streams registry"
    supports_waiver = True
    rationale = (
        "Spawn keys are plain tuples: two modules picking the same first"
        " element with overlapping trailing elements silently share RNG bit"
        " streams, coupling experiments that must be independent.  Declaring"
        " every stream domain once in `repro/sim/streams.py` makes collisions"
        " a lint error instead of a golden-test postmortem.  Data-dependent"
        " draw counts (rejection-sampling loops) are flagged too, because"
        " they break scalar↔vectorized stream equality (the PR 4/PR 7"
        " pre-draw discipline)."
    )
    example = (
        "seq = np.random.SeedSequence(seed, spawn_key=(0x1234, index))\n"
        "# 0x1234 is a bare literal, not a registered stream domain"
    )
    escape_hatch = (
        "Declare the domain as an upper-case integer constant in"
        " `repro/sim/streams.py` and import it; for a genuinely local"
        " stream (tests, one-off scripts) add"
        " `# reprolint: allow REP006 (reason)` on the flagged line."
    )

    def __init__(self, context: LintContext) -> None:
        super().__init__(context)
        self._flow: Optional[FunctionFlow] = None

    # ------------------------------------------------------------------
    # phase-2 entry point
    # ------------------------------------------------------------------
    def run(self, tree: ast.Module) -> list[Finding]:
        graph = self.context.project
        facts = self.context.facts
        if facts is None:
            facts = extract_facts(self.context.path, self.context.source, tree)
        if graph is None:
            graph = ProjectGraph([facts])
        registry = stream_registry(graph)
        reg_path = registry_path(graph)

        if reg_path == self.context.path:
            self._check_registry_duplicates(facts)

        resolved = resolve_spawn_sites(graph, registry or {})
        ok_values: dict[int, set[str]] = {}
        for entry in resolved:
            if entry.status == "ok" and entry.value is not None:
                ok_values.setdefault(entry.value, set()).add(entry.path)
        for entry in resolved:
            if entry.path != self.context.path:
                continue
            loc = _Loc(entry.site.line, entry.site.col)
            if entry.status == "literal":
                self.report(
                    loc,
                    f"spawn-key domain is a {entry.detail}; declare an"
                    " upper-case constant in repro/sim/streams.py and use it",
                )
            elif entry.status == "opaque":
                self.report(
                    loc,
                    "spawn_key must be a literal tuple whose first element"
                    " is a registered stream-domain constant"
                    " (repro/sim/streams.py)",
                )
            elif entry.status in ("unresolved", "unregistered", "shadow"):
                self.report(loc, f"spawn-key domain: {entry.detail}")
            elif entry.status == "ok" and entry.value is not None:
                others = ok_values.get(entry.value, set()) - {entry.path}
                if others:
                    self.report(
                        loc,
                        f"stream domain {entry.detail}"
                        f" ({entry.value:#x}) is also spawned in"
                        f" {', '.join(sorted(others))}; overlapping trailing"
                        " key elements would share bit streams — give each"
                        " module its own registered domain",
                    )

        self.visit(tree)  # data-dependent draw-count pass
        return self.findings

    def _check_registry_duplicates(self, facts: object) -> None:
        from repro.devtools.graph import FileFacts

        assert isinstance(facts, FileFacts)
        seen: dict[int, str] = {}
        for name, info in sorted(
            facts.symbols.items(), key=lambda item: item[1].lineno
        ):
            if (
                info.kind == "const"
                and name.isupper()
                and isinstance(info.value, int)
                and not isinstance(info.value, bool)
            ):
                if info.value in seen:
                    self.report(
                        _Loc(info.lineno, 0),
                        f"stream domain {name} re-uses value"
                        f" {info.value:#x} already registered as"
                        f" {seen[info.value]} — domains must be pairwise"
                        " distinct",
                    )
                else:
                    seen[info.value] = name

    # ------------------------------------------------------------------
    # data-dependent draw counts (intra-procedural)
    # ------------------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        flow = FunctionFlow(function)
        for loop in ast.walk(function):
            if not isinstance(loop, ast.While):
                continue
            condition_names = names_in(loop.test)
            drawn = any(
                is_rng_draw(expr)
                for name in condition_names
                if (expr := flow.bindings.get(name)) is not None
            )
            if not drawn:
                continue
            body_draws = any(
                is_rng_draw(statement) for statement in loop.body
            )
            if body_draws:
                self.report(
                    loop,
                    "while-loop condition depends on a drawn value and the"
                    " body draws again: the stream consumption count is"
                    " data-dependent, which breaks scalar↔vectorized"
                    " bit-equality — restructure to one draw per sample or"
                    " waive with a reason",
                )

"""Deterministic experiment sharding and order-stable merging.

A :class:`Shard` is one independent work unit of an experiment.  Shards
are derived purely from ``(spec, seed)`` — never from worker identity or
execution order — so any process can recompute the shard list and the
merged result is identical for ``--jobs 1`` and ``--jobs N``.

Per-shard randomness: ``param`` shards reuse the experiment seed (each
sweep value builds its hardware fresh from it, exactly as the serial
loop does), while ``users`` shards get one seed per participant — either
from the experiment's own legacy derivation (``seeds_entry``) or from
:func:`spawn_shard_seeds`, which spawns ``numpy.random.SeedSequence``
children so streams stay decorrelated no matter how many shards exist.
``userblocks`` shards carry ``(start, count)`` ranges of participant
indices; every participant's streams derive from ``(seed, user_index)``
alone, so neither the block size nor the job count can affect the
merged aggregate's bytes.  ``devicebatch`` shards are the same block
shape over *device* indices — each block steps one
:class:`repro.core.batch.DeviceBatch` under a single kernel batch task,
and per-device streams derive from ``(seed, device_index)`` spawn keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.obs.metrics import SNAPSHOT_VERSION, merge_snapshots
from repro.obs.recorder import Recorder, use_recorder
from repro.runner.registry import ExperimentSpec, resolve_entry
from repro.sim import kernel

__all__ = [
    "Shard",
    "ShardResult",
    "spawn_shard_seeds",
    "make_shards",
    "execute_shard",
    "merge_shard_results",
]


@dataclass(frozen=True)
class Shard:
    """One independent work unit of an experiment."""

    experiment_id: str
    index: int
    count: int
    #: Strategy-dependent: ``None`` (whole), a sweep value (param), or a
    #: participant seed (users).
    payload: Any = None


@dataclass
class ShardResult:
    """What one executed shard hands back to the merger."""

    experiment_id: str
    index: int
    #: An :class:`ExperimentResult` partial (whole/param) or a per-user
    #: outcome object (users).
    data: Any
    events: int
    wall_s: float
    #: Observability payload (:meth:`repro.obs.Recorder.payload`) when
    #: the shard ran observed, else ``None``.
    obs: Optional[dict[str, Any]] = None


def spawn_shard_seeds(seed: int, n: int) -> list[int]:
    """``n`` decorrelated child seeds via ``SeedSequence`` spawning.

    Spawning (rather than ``seed + i`` arithmetic) guarantees the child
    streams are statistically independent and stable under resharding:
    shard ``i``'s seed depends only on ``(seed, i)``.
    """
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(child.generate_state(1, np.uint32)[0]) for child in children]


def make_shards(spec: ExperimentSpec, seed: int) -> list[Shard]:
    """Decompose a spec into its deterministic shard list."""
    if spec.sharder == "whole":
        return [Shard(spec.experiment_id, 0, 1)]
    if spec.sharder == "param":
        values = spec.shard_values or ()
        return [
            Shard(spec.experiment_id, i, len(values), payload=value)
            for i, value in enumerate(values)
        ]
    if spec.sharder == "users":
        n_users = int(dict(spec.params)[spec.n_users_param])
        if spec.seeds_entry is not None:
            user_seeds = resolve_entry(spec.seeds_entry)(seed, n_users)
        else:
            user_seeds = spawn_shard_seeds(seed, n_users)
        return [
            Shard(spec.experiment_id, i, n_users, payload=user_seed)
            for i, user_seed in enumerate(user_seeds)
        ]
    if spec.sharder in ("userblocks", "devicebatch"):
        n_users = int(dict(spec.params)[spec.n_users_param])
        block = spec.users_per_shard
        starts = list(range(0, n_users, block))
        return [
            Shard(
                spec.experiment_id,
                i,
                len(starts),
                payload=(start, min(block, n_users - start)),
            )
            for i, start in enumerate(starts)
        ]
    raise ValueError(
        f"{spec.experiment_id}: unknown sharder {spec.sharder!r}"
    )


def _dispatch_shard(spec: ExperimentSpec, seed: int, shard: Shard) -> Any:
    """Run the shard's entry point (shared by observed/plain paths)."""
    if spec.sharder == "whole":
        return spec.run_whole(seed)
    if spec.sharder == "param":
        kwargs = spec.kwargs()
        kwargs[spec.shard_param] = (shard.payload,)
        data = resolve_entry(spec.entry)(seed=seed, **kwargs)
        if spec.result_index is not None:
            data = data[spec.result_index]
        return data
    if spec.sharder == "users":
        kwargs = {
            name: value
            for name, value in spec.params
            if name != spec.n_users_param
        }
        return resolve_entry(spec.user_entry)(shard.payload, **kwargs)
    if spec.sharder in ("userblocks", "devicebatch"):
        kwargs = {
            name: value
            for name, value in spec.params
            if name != spec.n_users_param
        }
        start, count = shard.payload
        return resolve_entry(spec.user_entry)(seed, start, count, **kwargs)
    raise ValueError(
        f"{spec.experiment_id}: unknown sharder {spec.sharder!r}"
    )


def execute_shard(
    spec: ExperimentSpec,
    seed: int,
    shard: Shard,
    observe: bool = False,
) -> ShardResult:
    """Run one shard, measuring wall time and kernel events.

    With ``observe=True`` the shard runs under a fresh
    :class:`repro.obs.Recorder` and the result carries the payload.
    The recorder only collects sim-derived values (never the wall
    clock), so observed shard payloads merge byte-identically across
    any job count.
    """
    events_before = kernel.global_events_processed()
    start = time.perf_counter()
    obs_payload: Optional[dict[str, Any]] = None
    if observe:
        recorder = Recorder()
        with use_recorder(recorder):
            data: Any = _dispatch_shard(spec, seed, shard)
        events = kernel.global_events_processed() - events_before
        recorder.counter("runner.shards")
        if events:
            recorder.observe(
                "runner.shard.events", float(events), low=1.0, high=1e9
            )
        obs_payload = recorder.payload()
    else:
        data = _dispatch_shard(spec, seed, shard)
        events = kernel.global_events_processed() - events_before
    wall_s = time.perf_counter() - start
    return ShardResult(
        spec.experiment_id, shard.index, data, events, wall_s, obs_payload
    )


def merge_shard_results(
    spec: ExperimentSpec, results: Sequence[ShardResult]
) -> ExperimentResult:
    """Merge shard partials (any order) into the final result.

    Partials are sorted by shard index, so the merged rows match the
    serial sweep order regardless of completion order.  Sharded runs
    carry a provenance note; values are normalized to plain Python
    scalars so fresh and cache-loaded results are byte-identical.
    """
    ordered = sorted(results, key=lambda r: r.index)
    if spec.sharder in ("users", "userblocks", "devicebatch"):
        kwargs = {
            name: value
            for name, value in spec.params
            if name in spec.aggregate_params
        }
        merged = resolve_entry(spec.aggregate_entry)(
            [r.data for r in ordered], **kwargs
        )
    elif len(ordered) == 1:
        merged = ordered[0].data
    else:
        merged = ExperimentResult.merge([r.data for r in ordered])
    if len(ordered) > 1:
        merged.note(
            f"merged from {len(ordered)} shards "
            f"(sharded by {spec.sharder!r})"
        )
    final = merged.normalized()
    observed = [part for part in ordered if part.obs is not None]
    if observed:
        metrics: dict[str, Any] = {}
        spans: list[dict[str, Any]] = []
        for part in observed:
            assert part.obs is not None
            metrics = merge_snapshots(metrics, part.obs["metrics"])
            spans.extend(
                {**record, "shard": part.index}
                for record in part.obs["spans"]
            )
        final.obs = {
            "version": SNAPSHOT_VERSION,
            "metrics": metrics,
            "spans": spans,
        }
    return final

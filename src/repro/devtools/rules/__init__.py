"""The shipped reprolint rule set.

=======  ==========================================================
REP001   no wall-clock reads inside the simulation stack
REP002   randomness only via seeded ``numpy.random.Generator`` s
REP003   trace-channel literals must exist in ``repro.sim.channels``
REP004   sim-time discipline: no float-equality on times, no
         negative scheduling delays
REP005   optional hardware fault hooks are null-checked before call
REP006   SeedSequence spawn-key domains come from the
         ``sim/streams`` registry, no cross-module collisions, no
         data-dependent draw counts
REP007   float sums route through exact accumulators; fast-path
         pow stays per-element
REP008   set iteration goes through ``sorted()`` on
         result-producing paths
REP009   scalar↔vectorized pair registry: both halves exist, are
         exported, and share a bit-equality test (project rule)
=======  ==========================================================

Adding a per-file rule: subclass :class:`repro.devtools.base.Rule` in a
new module here, set ``rule_id``/``title``/exemptions + the
``rationale``/``example``/``escape_hatch`` docs metadata, implement the
``visit_*`` methods, and append the class to :data:`ALL_RULES`.
Whole-project checks subclass
:class:`repro.devtools.base.ProjectRule` and register in
:data:`PROJECT_RULES` instead.
"""

from repro.devtools.rules.channels import TraceChannelRegistryRule
from repro.devtools.rules.floatdet import FloatDeterminismRule
from repro.devtools.rules.hooks import FaultHookGuardRule
from repro.devtools.rules.iterorder import IterationOrderRule
from repro.devtools.rules.parity import DualPathParityRule
from repro.devtools.rules.rng import SeededRngOnlyRule
from repro.devtools.rules.rngstreams import RngStreamCollisionRule
from repro.devtools.rules.simtime import SimTimeDisciplineRule
from repro.devtools.rules.wallclock import NoWallClockRule

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "DualPathParityRule",
    "FaultHookGuardRule",
    "FloatDeterminismRule",
    "IterationOrderRule",
    "NoWallClockRule",
    "RngStreamCollisionRule",
    "SeededRngOnlyRule",
    "SimTimeDisciplineRule",
    "TraceChannelRegistryRule",
]

#: Every shipped per-file rule, in id order.
ALL_RULES = (
    NoWallClockRule,
    SeededRngOnlyRule,
    TraceChannelRegistryRule,
    SimTimeDisciplineRule,
    FaultHookGuardRule,
    RngStreamCollisionRule,
    FloatDeterminismRule,
    IterationOrderRule,
)

#: Every shipped whole-project rule, in id order.
PROJECT_RULES = (DualPathParityRule,)

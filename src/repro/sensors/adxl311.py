"""Model of the Analog Devices ADXL311JE two-axis accelerometer.

The DistScroll add-on board carries an ADXL311 (Section 4.3).  In the
paper's experiments it is *unused*, but it is included "to reproduce
results published by others" — which is exactly what we use it for: the
tilt-scrolling baselines (Rock'n'Scroll, TiltText-style rate control) read
this model.

The ADXL311 outputs two ratiometric analog voltages proportional to the
acceleration along its X and Y axes, including the gravity component, so a
static tilt shows up as a DC offset.  Datasheet figures: sensitivity
~174 mV/g at Vs=3 V (we scale to the 5 V Smart-Its supply), zero-g output
at Vs/2, noise density ~300 µg/√Hz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["ADXL311Params", "ADXL311", "GRAVITY_G"]

#: Standard gravity in g units (by definition).
GRAVITY_G = 1.0


@dataclass(frozen=True)
class ADXL311Params:
    """Electrical parameters of an ADXL311 specimen.

    Attributes
    ----------
    sensitivity_v_per_g:
        Output change per g of acceleration (scaled for 5 V supply).
    zero_g_voltage:
        Output at 0 g (nominally mid-supply).
    noise_rms_g:
        RMS noise in g over the device bandwidth.
    range_g:
        Full-scale range; output clips beyond ±range.
    """

    sensitivity_v_per_g: float = 0.290
    zero_g_voltage: float = 2.5
    noise_rms_g: float = 0.002
    range_g: float = 2.0


@dataclass
class ADXL311:
    """Simulated two-axis accelerometer sensing tilt plus motion.

    The caller supplies the device's orientation as pitch and roll angles
    (radians) and optionally linear acceleration in the device frame; the
    model projects gravity onto the X/Y axes and converts to voltages.

    Parameters
    ----------
    params:
        Electrical parameters.
    rng:
        Random generator for noise (``None`` → ideal noise-free part).
    """

    params: ADXL311Params = field(default_factory=ADXL311Params)
    rng: Optional[np.random.Generator] = None

    def acceleration_g(
        self,
        pitch_rad: float,
        roll_rad: float,
        linear_accel_g: tuple[float, float] = (0.0, 0.0),
    ) -> tuple[float, float]:
        """True accelerations (g) on the X and Y axes for a given attitude.

        Pitch tilts the device around its X axis (moves gravity onto Y);
        roll tilts around Y (moves gravity onto X).  Linear acceleration is
        added in the device frame.
        """
        gx = GRAVITY_G * math.sin(roll_rad) + linear_accel_g[0]
        gy = GRAVITY_G * math.sin(pitch_rad) + linear_accel_g[1]
        limit = self.params.range_g
        return (
            float(np.clip(gx, -limit, limit)),
            float(np.clip(gy, -limit, limit)),
        )

    def output_voltages(
        self,
        pitch_rad: float,
        roll_rad: float,
        linear_accel_g: tuple[float, float] = (0.0, 0.0),
    ) -> tuple[float, float]:
        """Analog X/Y output voltages, with noise if an RNG is attached."""
        gx, gy = self.acceleration_g(pitch_rad, roll_rad, linear_accel_g)
        if self.rng is not None:
            gx += self.rng.normal(0.0, self.params.noise_rms_g)
            gy += self.rng.normal(0.0, self.params.noise_rms_g)
        to_volts = self.params.sensitivity_v_per_g
        vx = self.params.zero_g_voltage + gx * to_volts
        vy = self.params.zero_g_voltage + gy * to_volts
        return float(vx), float(vy)

    def tilt_from_voltages(self, vx: float, vy: float) -> tuple[float, float]:
        """Invert: estimate (roll, pitch) radians from output voltages.

        Values outside ±1 g are clamped before the arcsine, as real firmware
        must do.
        """
        gx = (vx - self.params.zero_g_voltage) / self.params.sensitivity_v_per_g
        gy = (vy - self.params.zero_g_voltage) / self.params.sensitivity_v_per_g
        roll = math.asin(float(np.clip(gx, -1.0, 1.0)))
        pitch = math.asin(float(np.clip(gy, -1.0, 1.0)))
        return roll, pitch

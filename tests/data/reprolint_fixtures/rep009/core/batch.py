"""REP009 fixture: a dual-path pair with its vector half missing.

The parity registry pins ``ScalarDeviceEngine`` ↔ ``DeviceBatch`` in
``core/batch.py``; this tree defines only the scalar half, so REP009
must report exactly one missing-path finding.
"""

__all__ = ["ScalarDeviceEngine"]


class ScalarDeviceEngine:
    """Scalar oracle stub (the batched twin has gone missing)."""

    def step(self, now: float) -> float:
        return now

"""Sensor physics models: Sharp GP2D120 IR ranger, ADXL311 accelerometer."""

from repro.sensors.adxl311 import ADXL311, ADXL311Params
from repro.sensors.calibration import (
    CalibrationResult,
    CalibrationSample,
    calibrate,
    sweep_environments,
)
from repro.sensors.gp2d120 import (
    GP2D120,
    GP2D120Params,
    SENSOR_MAX_CM,
    SENSOR_MIN_CM,
)
from repro.sensors.surfaces import (
    AMBIENT_CONDITIONS,
    CLOTHING,
    REFERENCE_LIGHT,
    REFERENCE_SURFACE,
    AmbientLight,
    Surface,
)

__all__ = [
    "ADXL311",
    "ADXL311Params",
    "CalibrationResult",
    "CalibrationSample",
    "calibrate",
    "sweep_environments",
    "GP2D120",
    "GP2D120Params",
    "SENSOR_MAX_CM",
    "SENSOR_MIN_CM",
    "AMBIENT_CONDITIONS",
    "CLOTHING",
    "REFERENCE_LIGHT",
    "REFERENCE_SURFACE",
    "AmbientLight",
    "Surface",
]

"""The stocktaking scenario of Section 5.2.

"An example here is stocktaking where one hand counts or scans the items
and the second hand operates the mobile device to input data on these
items."  The session model: items arrive from the scanning hand at a
given rate; for each item the DistScroll hand must select the item's
category in the menu and then a count value — all strictly one-handed,
which is the point.

:class:`StocktakingSession` builds the inventory menu, drives a
:class:`~repro.interaction.user.SimulatedUser` through the per-item
selections, and reports throughput (items/minute) and error rates — the
metric the glove benchmark (ABL-GLOVE) compares across techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import MenuEntry, build_menu
from repro.interaction.gloves import GLOVES, Glove
from repro.interaction.user import SimulatedUser

__all__ = ["ITEM_CATEGORIES", "build_inventory_menu", "ItemRecord", "StocktakingSession"]

#: Warehouse categories; each category holds count leaves 1..10.
ITEM_CATEGORIES: tuple[str, ...] = (
    "Beakers",
    "Pipettes",
    "Gloves box",
    "Reagent A",
    "Reagent B",
    "Tubing",
    "Filters",
    "Labels",
)


def build_inventory_menu(max_count: int = 10) -> MenuEntry:
    """Two-level menu: category → count value."""
    spec = {
        category: [f"Count {i}" for i in range(1, max_count + 1)]
        for category in ITEM_CATEGORIES
    }
    return build_menu(spec, label="inventory")


@dataclass
class ItemRecord:
    """One scanned item that must be logged through the menu."""

    category_index: int
    count_index: int
    logged: bool = False
    log_time_s: float = 0.0
    wrong_activations: int = 0


@dataclass
class StocktakingSession:
    """A one-handed stocktaking run.

    Parameters
    ----------
    seed:
        Reproducibility seed (device noise + item sequence + user).
    glove:
        What the operating hand wears (lab gloves, winter gloves...).
    n_items:
        Items to log.
    config:
        Device configuration.
    """

    seed: int = 0
    glove: Glove = field(default_factory=lambda: GLOVES["latex"])
    n_items: int = 10
    config: DeviceConfig = field(default_factory=DeviceConfig)
    items: list[ItemRecord] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)
        self.device = DistScroll(
            build_inventory_menu(), config=self.config, seed=self.seed
        )
        self.user = SimulatedUser(
            device=self.device, rng=self.rng, glove=self.glove
        )
        # Trained warehouse worker: past the learning curve.
        self.user.practice_trials = 40
        self.items = [
            ItemRecord(
                category_index=int(self.rng.integers(0, len(ITEM_CATEGORIES))),
                count_index=int(self.rng.integers(0, 10)),
            )
            for _ in range(self.n_items)
        ]

    def run(self) -> dict:
        """Log every item; returns the session report.

        Report keys: ``items_per_minute``, ``mean_item_time_s``,
        ``wrong_activations``, ``total_time_s``.
        """
        self.device.run_for(0.5)
        start = self.device.now
        total_wrong = 0
        for item in self.items:
            item_start = self.device.now
            # Select the category (descends into its count submenu).
            result_cat = self.user.select_entry(item.category_index)
            # Select the count (activates a leaf).
            result_count = self.user.select_entry(item.count_index)
            # Back to the top level for the next item.
            while self.device.depth > 0:
                self.user._click_button("back")
            item.logged = result_cat.success and result_count.success
            item.log_time_s = self.device.now - item_start
            item.wrong_activations = (
                result_cat.wrong_activations + result_count.wrong_activations
            )
            total_wrong += item.wrong_activations
        total = self.device.now - start
        mean_item = float(
            np.mean([item.log_time_s for item in self.items])
        )
        return {
            "total_time_s": total,
            "mean_item_time_s": mean_item,
            "items_per_minute": 60.0 * self.n_items / total if total > 0 else 0.0,
            "wrong_activations": total_wrong,
            "all_logged": all(item.logged for item in self.items),
        }

"""Discrete-event simulation substrate for the DistScroll reproduction."""

from repro.sim.channels import CHANNELS, EVENTS, FAULT_RECOVERY, FAULTS
from repro.sim.kernel import (
    Event,
    PeriodicTask,
    Process,
    SimulationError,
    Simulator,
    drain,
)
from repro.sim.trace import TraceChannel, Tracer

__all__ = [
    "CHANNELS",
    "EVENTS",
    "Event",
    "FAULTS",
    "FAULT_RECOVERY",
    "PeriodicTask",
    "Process",
    "SimulationError",
    "Simulator",
    "drain",
    "TraceChannel",
    "Tracer",
]

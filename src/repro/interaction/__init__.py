"""Simulated humans: hand motor model, gloves, Fitts's law, users,
tasks, and the seeded persona engine for population-scale studies."""

from repro.interaction.fitts import (
    FittsFit,
    fit_fitts,
    index_of_difficulty,
    movement_time,
    throughput,
)
from repro.interaction.gloves import GLOVES, Glove, resolve_glove
from repro.interaction.hand import Hand, minimum_jerk
from repro.interaction.personas import (
    Persona,
    PersonaSpec,
    parse_spec,
    persona_for_user,
    sample_personas,
    user_rng,
)
from repro.interaction.tasks import fitts_ladder, hierarchical_tasks, random_targets
from repro.interaction.user import (
    DiscoveryResult,
    MotorProfile,
    SimulatedUser,
    TrialResult,
)

__all__ = [
    "FittsFit",
    "fit_fitts",
    "index_of_difficulty",
    "movement_time",
    "throughput",
    "GLOVES",
    "Glove",
    "resolve_glove",
    "Hand",
    "minimum_jerk",
    "Persona",
    "PersonaSpec",
    "parse_spec",
    "persona_for_user",
    "sample_personas",
    "user_rng",
    "fitts_ladder",
    "hierarchical_tasks",
    "random_targets",
    "DiscoveryResult",
    "MotorProfile",
    "SimulatedUser",
    "TrialResult",
]

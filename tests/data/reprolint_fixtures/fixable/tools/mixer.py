"""``--fix`` fixture: one REP008 and one REP002 mechanical fix.

``repro lint --fix`` must leave this tree re-linting clean, and a
second ``--fix`` run must be byte-stable (no further edits).
"""

import numpy as np


def mixed_channels(names: list[str]) -> list[str]:
    return list({name.lower() for name in names})


def jitter() -> float:
    return float(np.random.normal(0.0, 1.0))

"""EXT-PDA — the planned PDA add-on, measured (§7).

"To further investigate user acceptance and possible applications, we
also intend to construct a minimized version of the DistScroll as add-on
for a PDA."  The experiment compares the handheld prototype against the
PDA build (:mod:`repro.hardware.pda`) on a 20-entry menu:

* **selection time** — the same closed-loop motor model drives both; the
  interaction (islands, gaps, confirm debounce) is identical, so times
  should match closely — the add-on *preserves* the technique;
* **display real estate** — the PDA shows 11 rows vs the prototype's 5;
  for a target at an unknown position, the chance it is already visible
  when the level opens, and the expected scan penalty otherwise, both
  favour the PDA.  (Scan model: reading-rate-limited sweep at 8 rows/s
  through the not-yet-visible part of the list.)
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.hardware.display import TEXT_LINES
from repro.hardware.pda import PDAListWidget, build_pda_device
from repro.interaction.hand import Hand
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = ["run_pda"]

#: Visual reading rate while scanning an unfamiliar list (rows/second).
_READING_RATE_ROWS_S = 8.0


def run_pda(
    seed: int = 0,
    n_entries: int = 20,
    n_trials: int = 8,
    n_users: int = 3,
) -> ExperimentResult:
    """Handheld prototype vs PDA add-on."""
    result = ExperimentResult(
        experiment_id="EXT-PDA",
        title=f"Handheld prototype vs PDA add-on ({n_entries}-entry menu)",
        columns=(
            "variant",
            "visible_rows",
            "mean_select_s",
            "success_rate",
            "p_target_visible",
            "mean_scan_penalty_s",
        ),
    )
    master = np.random.default_rng(seed)

    handheld_times, handheld_ok = _run_handheld(
        master, n_entries, n_trials, n_users
    )
    pda_times, pda_ok = _run_pda_variant(master, n_entries, n_trials, n_users)

    for variant, rows, times, ok in (
        ("handheld", TEXT_LINES, handheld_times, handheld_ok),
        ("pda-addon", PDAListWidget.VISIBLE_ROWS, pda_times, pda_ok),
    ):
        p_visible = min(rows / n_entries, 1.0)
        hidden = max(n_entries - rows, 0)
        scan_penalty = (1.0 - p_visible) * (hidden / 2.0) / _READING_RATE_ROWS_S
        result.add_row(
            variant,
            rows,
            float(np.mean(times)),
            ok,
            p_visible,
            scan_penalty,
        )
    result.note(
        "selection times match (the add-on preserves the technique); the "
        "PDA's 11-row screen more than doubles the chance an unknown "
        "target is visible without scrolling"
    )
    return result


def _run_handheld(
    master: np.random.Generator, n_entries: int, n_trials: int, n_users: int
) -> tuple[list[float], float]:
    labels = [f"Item {i:02d}" for i in range(n_entries)]
    config = DeviceConfig(chunk_size=0)
    times, successes, total = [], 0, 0
    for _ in range(n_users):
        user_seed = int(master.integers(2**31))
        rng = np.random.default_rng(user_seed)
        device = DistScroll(build_menu(labels), config=config, seed=user_seed)
        user = SimulatedUser(device=device, rng=rng)
        user.practice_trials = 30
        device.run_for(0.5)
        for target in random_targets(n_entries, n_trials, rng, min_separation=2):
            trial = user.select_entry(target)
            times.append(trial.duration_s)
            successes += int(trial.success)
            total += 1
    return times, successes / total


def _run_pda_variant(
    master: np.random.Generator, n_entries: int, n_trials: int, n_users: int
) -> tuple[list[float], float]:
    """Closed-loop selection on the PDA build.

    A compact user loop (reach via the hand plant, verify on the widget,
    press the PDA select button) using the same motor constants.
    """
    labels = [f"Item {i:02d}" for i in range(n_entries)]
    times, successes, total = [], 0, 0
    for _ in range(n_users):
        user_seed = int(master.integers(2**31))
        rng = np.random.default_rng(user_seed)
        sim, addon, driver = build_pda_device(
            build_menu(labels), seed=user_seed
        )
        hand = Hand(
            sim, addon.set_distance, start_cm=20.0, rng=rng
        )
        sim.run_until(0.5)
        activated: list[str] = []
        driver.on_activate = activated.append
        driver.cursor.on_activate = lambda e: activated.append(e.label)
        for target in random_targets(n_entries, n_trials, rng, min_separation=2):
            start = sim.now
            aim = driver.aim_distance_for_index(target)
            success = False
            sim.run_until(sim.now + 0.26 * rng.lognormal(0.0, 0.15))
            for _attempt in range(10):
                distance = abs(hand.position(include_tremor=False) - aim)
                mt = max(0.12, 0.10 + 0.145 * np.log2(distance / 1.0 + 1.0))
                tolerance = driver.island_map.distance_tolerance(
                    0, addon.sensor
                )
                endpoint = aim + rng.normal(0.0, 0.27 * max(tolerance, 0.1))
                hand.move_to(endpoint, mt)
                sim.run_until(sim.now + mt + 0.26)
                if driver.highlighted_index == target:
                    sim.run_until(sim.now + 0.22)
                    if driver.highlighted_index == target:
                        sim.run_until(sim.now + 0.16)
                        driver.press_select()
                        success = activated[-1:] == [labels[target]]
                        break
            times.append(sim.now - start)
            successes += int(success)
            total += 1
    return times, successes / total

"""Tests for the tracer plus whole-system robustness properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.events import ZoomChanged, decode_event
from repro.core.menu import build_menu
from repro.sim.trace import Tracer


class TestTracer:
    def test_record_and_read(self):
        tracer = Tracer()
        tracer.record("ch", 0.1, 5)
        tracer.record("ch", 0.2, 7)
        channel = tracer.channel("ch")
        assert len(channel) == 2
        assert list(channel) == [(0.1, 5), (0.2, 7)]
        assert channel.last() == (0.2, 7)

    def test_numpy_views(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record("ch", i * 0.1, float(i))
        channel = tracer.channel("ch")
        assert channel.times.shape == (5,)
        assert channel.values.dtype == float

    def test_heterogeneous_values_fall_back_to_object(self):
        tracer = Tracer()
        tracer.record("ch", 0.0, "text")
        tracer.record("ch", 0.1, 3)
        assert tracer.channel("ch").values.dtype == object

    def test_between(self):
        tracer = Tracer()
        for i in range(10):
            tracer.record("ch", float(i), i)
        window = tracer.channel("ch").between(2.0, 4.0)
        assert [v for _, v in window] == [2, 3, 4]

    def test_count_changes(self):
        tracer = Tracer()
        for value in (1, 1, 2, 2, 3, 1):
            tracer.record("ch", 0.0, value)
        assert tracer.channel("ch").count_changes() == 3

    def test_subscribers_fire_even_when_disabled(self):
        tracer = Tracer(enabled=False)
        got = []
        tracer.subscribe("ch", lambda t, v: got.append(v))
        tracer.record("ch", 0.0, 42)
        assert got == [42]
        assert tracer.get("ch") is None  # nothing stored

    def test_unsubscribe(self):
        tracer = Tracer()
        got = []
        cb = lambda t, v: got.append(v)  # noqa: E731
        tracer.subscribe("ch", cb)
        tracer.unsubscribe("ch", cb)
        tracer.record("ch", 0.0, 1)
        assert got == []

    def test_empty_channel_last_raises(self):
        tracer = Tracer()
        with pytest.raises(LookupError):
            tracer.channel("empty").last()

    def test_clear(self):
        tracer = Tracer()
        tracer.record("ch", 0.0, 1)
        tracer.clear()
        assert tracer.channels() == []


class TestZoomEventSerialization:
    def test_roundtrip(self):
        event = ZoomChanged(time=1.0, zoom="fine", window_start=5,
                            window_end=14)
        assert decode_event(event.to_bytes()) == event


class TestSystemRobustness:
    """Fuzz the physical inputs: nothing may crash, invariants must hold."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        distances=st.lists(
            st.floats(min_value=0.2, max_value=45.0, allow_nan=False),
            min_size=3,
            max_size=12,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_distance_walk_keeps_invariants(self, seed, distances):
        device = DistScroll(
            build_menu([f"I{i}" for i in range(12)]), seed=seed
        )
        for distance in distances:
            device.hold_at(distance)
            device.run_for(0.15)
            assert 0 <= device.highlighted_index < 12
            assert device.board.mcu.ram_free >= 0
        # Event stream timestamps are monotone.
        times = [t for t, _ in device.events()]
        assert times == sorted(times)

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        buttons=st.lists(
            st.sampled_from(["select", "back", "aux"]), min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_button_mashing_never_crashes(self, seed, buttons):
        device = DistScroll(
            build_menu(
                {"A": ["a1", "a2"], "B": {"C": ["c1"]}, "D": [], "E": []}
            ),
            seed=seed,
        )
        device.run_for(0.2)
        for name in buttons:
            device.click(name)
            assert device.depth >= 0
            entries = device.firmware.cursor.entries
            assert 0 <= device.highlighted_index < len(entries)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_sdaz_random_walk(self, seed):
        config = DeviceConfig(long_menu_mode="sdaz", chunk_size=10)
        device = DistScroll(
            build_menu([f"I{i}" for i in range(40)]), config=config,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        for _ in range(8):
            device.hold_at(float(rng.uniform(2.0, 32.0)))
            device.run_for(0.3)
            assert 0 <= device.highlighted_index < 40
            assert device.firmware.zoom in ("coarse", "fine")


class TestSerializeFraming:
    """serialize() must be injective on trace contents (ISSUE satellite).

    The old encoding joined channel names and records with the same
    ``\\x1e`` separator, so e.g. one channel named ``"a\\x1eb"`` collided
    with two channels ``"a"`` and ``"b"``; length-prefixed framing keeps
    distinct contents distinct.
    """

    def test_separator_in_channel_name_is_unambiguous(self):
        one = Tracer()
        one.channel("a\x1eb")
        two = Tracer()
        two.channel("a")
        two.channel("b")
        assert one.serialize() != two.serialize()

    def test_separator_in_value_is_unambiguous(self):
        one = Tracer()
        one.record("ch", 0.0, "x\x1e0.5|y")
        two = Tracer()
        two.record("ch", 0.0, "x")
        two.record("ch", 0.5, "y")
        assert one.serialize() != two.serialize()

    def test_empty_channel_followed_by_another(self):
        one = Tracer()
        one.channel("")
        one.channel("a")
        two = Tracer()
        two.channel("a")
        assert one.serialize() != two.serialize()

    def test_same_contents_serialize_identically(self):
        def build():
            tracer = Tracer()
            tracer.record("b", 0.0, 1)
            tracer.record("a", 0.5, "x|y")
            tracer.record("b", 1.0, 2.5)
            return tracer

        assert build().serialize() == build().serialize()

    def test_record_split_across_channels_differs(self):
        one = Tracer()
        one.record("a", 0.0, 1)
        one.record("a", 1.0, 2)
        two = Tracer()
        two.record("a", 0.0, 1)
        two.record("b", 1.0, 2)
        assert one.serialize() != two.serialize()

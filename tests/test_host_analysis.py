"""Tests for the offline session-analysis toolbox."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.host import SessionRecorder, SessionReplay, analyze_session
from repro.host.analysis import _count_velocity_peaks
from repro.interaction.user import SimulatedUser


def record_session(tmp_path, n_trials=3, seed=9):
    """Run a few real trials and record them densely."""
    device = DistScroll(
        build_menu([f"Item {i}" for i in range(8)]), seed=seed
    )
    user = SimulatedUser(device=device, rng=np.random.default_rng(seed))
    user.practice_trials = 30
    path = tmp_path / "session.jsonl"
    recorder = SessionRecorder(device, path, pose_resolution_cm=0.1)
    # Dense pose sampling via a periodic task on the shared simulator.
    from repro.sim.kernel import PeriodicTask

    PeriodicTask(device.sim, 0.02, recorder.sample_pose, phase=0.0)
    device.run_for(0.5)
    targets = [2, 6, 1, 7, 4][:n_trials]
    for target in targets:
        user.select_entry(target)
    recorder.close()
    return path, targets


class TestSessionAnalysis:
    def test_trials_segmented_by_activation(self, tmp_path):
        path, targets = record_session(tmp_path, n_trials=3)
        analysis = analyze_session(SessionReplay.load(path))
        assert analysis.n_trials == 3
        labels = [t.activated_label for t in analysis.trials]
        assert labels == [f"Item {i}" for i in targets]

    def test_kinematics_plausible(self, tmp_path):
        path, _ = record_session(tmp_path, n_trials=3)
        analysis = analyze_session(SessionReplay.load(path))
        for trial in analysis.trials:
            assert trial.duration_s > 0.3
            assert trial.path_cm > 0.5
            assert 1.0 < trial.peak_velocity_cm_s < 300.0
            assert trial.submovements >= 1

    def test_aggregates(self, tmp_path):
        path, _ = record_session(tmp_path, n_trials=2)
        analysis = analyze_session(SessionReplay.load(path))
        assert analysis.mean_trial_s > 0
        assert analysis.mean_submovements >= 1
        assert analysis.total_path_cm >= sum(
            t.path_cm for t in analysis.trials
        ) * 0.5
        assert len(analysis.summary_rows()) == 2

    def test_empty_session(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"rec": "pose", "t": 0.0, "d": 20.0}\n')
        analysis = analyze_session(SessionReplay.load(path))
        assert analysis.n_trials == 0
        assert analysis.mean_trial_s == 0.0
        assert analysis.mean_peak_velocity == 0.0


class TestVelocityPeakCounting:
    def test_single_clean_reach(self):
        velocity = np.array([0.0, 2.0, 10.0, 20.0, 10.0, 2.0, 0.0])
        assert _count_velocity_peaks(velocity, min_peak=3.0) == 1

    def test_two_submovements(self):
        velocity = np.array(
            [0.0, 15.0, 0.5, 0.2, 8.0, 0.3, 0.0]
        )
        assert _count_velocity_peaks(velocity, min_peak=3.0) == 2

    def test_tremor_only_is_zero(self):
        velocity = np.array([0.5, -0.8, 0.6, -0.4, 0.7])
        assert _count_velocity_peaks(velocity, min_peak=3.0) == 0

    def test_hysteresis_prevents_double_counting(self):
        # Dips that do not fall below 40% of threshold stay one movement.
        velocity = np.array([0.0, 10.0, 2.0, 10.0, 0.0])
        assert _count_velocity_peaks(velocity, min_peak=3.0) == 1

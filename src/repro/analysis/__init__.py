"""Statistics helpers shared by experiments and benchmarks.

Two layers live here: the classic batch helpers (``summarize``,
``bootstrap_ci``, ``linear_regression``) and the streaming aggregates
(``StreamingMoments``, ``QuantileSketch``, ``CellCounter``) that give
the population-scale user studies O(1)-memory, exactly-mergeable
statistics.
"""

from repro.analysis.stats import (
    CellCounter,
    QuantileSketch,
    StreamingMoments,
    Summary,
    bootstrap_ci,
    linear_regression,
    summarize,
)

__all__ = [
    "CellCounter",
    "QuantileSketch",
    "StreamingMoments",
    "Summary",
    "bootstrap_ci",
    "linear_regression",
    "summarize",
]

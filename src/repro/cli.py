"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction a front door that does not require writing
Python: list and run experiments (serially or across worker processes),
print a quick interactive demo of the device, dump the sensor
calibration, or inspect an island-map configuration.

Commands
--------
``experiments``            list all experiment ids
``run <id> [--seed N] [--csv PATH] [--jobs N] [--backend B]
          [--resume] [--speculate] [--manifest PATH]
          [--users N [--personas SPEC] [--battery NAME]]``
                           run one experiment and print its table;
                           ``--jobs N`` shards it across N worker
                           processes via the parallel runner and
                           ``--backend`` picks the executor (inline,
                           pool, workqueue).  For STUDY1, ``--users N``
                           switches to the population-scale persona
                           study (streaming aggregation, O(1) memory,
                           byte-identical for any job count); for
                           ARENA, ``--users/--personas/--battery``
                           reshape the cross-technique tournament the
                           same way (``--personas``/``--battery`` work
                           without ``--users`` there);
                           ``--resume`` continues an interrupted run
                           from its shard cache and manifest,
                           recomputing only the missing shards, and
                           ``--speculate`` re-executes stragglers on
                           idle workers (first result wins, digests
                           asserted equal)
``run-all [--jobs N] [--backend B] [--resume] [--speculate]
          [--manifest PATH] [--no-cache] [--only ID,ID] [--seed N]
          [--csv-dir DIR] [--cache-dir DIR] [--bench PATH]``
                           run the whole suite through the parallel
                           runner with the on-disk result cache, and
                           record per-experiment wall-clock and
                           events/second into ``BENCH_runner.json``
``calibrate [--seed N]``   print the Figure-4 sweep for one specimen
``demo [--seed N]``        scripted device walk-through on the phone menu
``islands [--entries N] [--near CM] [--far CM] [--fill F]
          [--placement P]``
                           print the island table (slot centers, code
                           ranges, widths, coverage) for a configuration
``lint [--root DIR] [--baseline PATH | --no-baseline]
       [--format text|json] [--rules ID,ID] [--write-baseline]
       [--changed] [--fix] [--prune-baseline] [--cache-dir DIR]``
                           run the reprolint invariant checks (REP001-
                           REP009) over the source tree; exits non-zero
                           on any non-baselined finding.  ``--changed``
                           lints only git-changed files plus their
                           reverse import-dependents, ``--cache-dir``
                           enables the content-addressed incremental
                           cache, ``--fix`` applies mechanical rewrites
                           (sorted() wraps, seeded-generator rewrites),
                           ``--prune-baseline`` drops stale entries
``bench [--quick] [--only NAME,NAME] [--output PATH]
        [--check BASELINE] [--threshold F] [--min-speedup F] [--list]``
                           run the headless perf suite, write
                           ``BENCH_perf.json`` and (with ``--check``)
                           fail on >25% throughput regression against
                           the committed baseline or on the vectorized
                           calibration fast path dropping below 3x
``trace <id> [--seed N] [--jobs N] [--out PATH] [--format chrome|jsonl]``
                           run one experiment observed and summarize its
                           sim-time spans; ``--out`` writes a Chrome
                           trace-event JSON (opens in Perfetto) or JSONL
``metrics [<id>] [--seed N] [--jobs N]``
                           print the metric report of an observed run;
                           without an id, runs a scripted device session
                           and shows the per-stage firmware histograms
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments import ExperimentResult
from repro.runner.registry import REGISTRY, build_runner

__all__ = ["main", "EXPERIMENT_RUNNERS"]

#: Registry: experiment id -> zero-config runner returning a result.
#: Derived from the declarative specs in :mod:`repro.runner.registry`;
#: kept as a mapping of callables for backward compatibility.
EXPERIMENT_RUNNERS: dict[str, Callable[[int], ExperimentResult]] = {
    experiment_id: build_runner(spec)
    for experiment_id, spec in REGISTRY.items()
}


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment_id in EXPERIMENT_RUNNERS:
        print(experiment_id)
    return 0


def _parse_crash_plan(
    tokens: Sequence[str],
) -> Optional[dict[tuple[str, int], int]]:
    """Parse repeated ``--inject-crash EXPID:SHARD[:COUNT]`` values.

    Returns ``None`` (after printing a usage error) on malformed input.
    """
    plan: dict[tuple[str, int], int] = {}
    for token in tokens:
        parts = token.split(":")
        if len(parts) not in (2, 3):
            print(
                f"--inject-crash {token!r}: expected EXPID:SHARD[:COUNT]",
                file=sys.stderr,
            )
            return None
        try:
            shard = int(parts[1])
            count = int(parts[2]) if len(parts) == 3 else 1
        except ValueError:
            print(
                f"--inject-crash {token!r}: SHARD and COUNT must be"
                " integers",
                file=sys.stderr,
            )
            return None
        if shard < 0 or count < 1:
            print(
                f"--inject-crash {token!r}: SHARD must be >= 0 and"
                " COUNT >= 1",
                file=sys.stderr,
            )
            return None
        key = (parts[0].upper(), shard)
        plan[key] = plan.get(key, 0) + count
    return plan


def _runner_options(
    args: argparse.Namespace,
) -> Optional[dict[str, object]]:
    """Validate the shared runner-v2 flags into run_experiments kwargs.

    Returns ``None`` (after printing to stderr) on misuse — crash
    injection off the workqueue backend, or an unknown backend name —
    so both ``run`` and ``run-all`` exit 2 instead of tracebacking.
    """
    from repro.runner import BACKENDS

    backend = getattr(args, "backend", None)
    if backend is not None and backend not in BACKENDS:
        print(
            f"unknown backend {backend!r}; choose from"
            f" {', '.join(BACKENDS)}",
            file=sys.stderr,
        )
        return None
    crash_plan = _parse_crash_plan(getattr(args, "inject_crash", None) or [])
    if crash_plan is None:
        return None
    if crash_plan and backend != "workqueue":
        print(
            "--inject-crash requires --backend workqueue (the other"
            " backends cannot survive a worker loss)",
            file=sys.stderr,
        )
        return None
    return {
        "backend": backend,
        "resume": bool(getattr(args, "resume", False)),
        "speculate": bool(getattr(args, "speculate", False)),
        "manifest_path": getattr(args, "manifest", None),
        "crash_plan": crash_plan or None,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    experiment_id = args.experiment_id.upper()
    runner = EXPERIMENT_RUNNERS.get(experiment_id)
    if runner is None:
        print(
            f"unknown experiment {args.experiment_id!r}; "
            "see `python -m repro experiments`",
            file=sys.stderr,
        )
        return 2
    trace_out = getattr(args, "trace_out", None)
    users = getattr(args, "users", None)
    personas = getattr(args, "personas", None)
    battery_name = getattr(args, "battery", None)
    population = (
        users is not None or personas is not None or battery_name is not None
    )
    if (
        users is None
        and (personas is not None or battery_name is not None)
        and experiment_id != "ARENA"
    ):
        print(
            "--personas/--battery only apply to population runs; "
            "add --users N (ARENA accepts them without --users)",
            file=sys.stderr,
        )
        return 2
    options = _runner_options(args)
    if options is None:
        return 2
    # Any runner-v2 flag forces the sharded path: the serial runner has
    # no backend, no shard cache and no manifest.
    sharded = any(value for value in options.values())
    cache = None
    if options["resume"]:
        from repro.runner import ResultCache
        from repro.runner.cache import default_cache_dir

        # Resume is shard-cache driven: completed shards are read back
        # from the on-disk cache, so --resume implies using it.
        cache = ResultCache()
        if options["manifest_path"] is None:
            options["manifest_path"] = (
                default_cache_dir()
                / "manifests"
                / f"{experiment_id}-seed{args.seed}.json"
            )
    if population:
        if experiment_id not in ("STUDY1", "ARENA"):
            print(
                "--users is only meaningful for STUDY1 or ARENA",
                file=sys.stderr,
            )
            return 2
        from repro.runner import run_experiments
        from repro.runner.registry import arena_spec, scaled_user_study_spec

        if experiment_id == "ARENA":
            default_users = dict(REGISTRY["ARENA"].params)["n_users"]
            spec = arena_spec(
                users if users is not None else default_users,
                personas=personas or "full",
                battery=battery_name or "scrolltest",
            )
        else:
            spec = scaled_user_study_spec(
                users,
                personas=personas or "full",
                battery=battery_name or "scrolltest",
            )
        results, _bench = run_experiments(
            [experiment_id],
            seed=args.seed,
            jobs=max(1, args.jobs or 1),
            cache=cache,
            observe=trace_out is not None,
            overrides={experiment_id: spec},
            **options,
        )
        result = results[experiment_id]
    elif args.jobs is None and trace_out is None and not sharded:
        result = runner(args.seed)
    else:
        # --trace-out always routes through the sharded runner (even for
        # --jobs 1) so the observed payload takes the identical
        # shard/merge path for every job count.
        from repro.runner import run_experiments

        results, _bench = run_experiments(
            [experiment_id],
            seed=args.seed,
            jobs=max(1, args.jobs or 1),
            cache=cache,
            observe=trace_out is not None,
            **options,
        )
        result = results[experiment_id]
    print(result.table())
    if args.csv:
        result.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    if trace_out is not None:
        from pathlib import Path

        from repro.obs import to_chrome_trace

        path = Path(trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            to_chrome_trace(result.obs or {}, title=experiment_id)
        )
        print(f"wrote {path} (open in https://ui.perfetto.dev)")
    return 0


def _observed_result(
    experiment_id: str, seed: int, jobs: int
) -> Optional[ExperimentResult]:
    """Run one experiment under the observed runner path."""
    from repro.runner import run_experiments

    if experiment_id not in EXPERIMENT_RUNNERS:
        print(
            f"unknown experiment {experiment_id!r}; "
            "see `python -m repro experiments`",
            file=sys.stderr,
        )
        return None
    results, _bench = run_experiments(
        [experiment_id], seed=seed, jobs=max(1, jobs), observe=True
    )
    return results[experiment_id]


def _device_session_payload(seed: int) -> dict:
    """A scripted observed device session for bare ``repro metrics``.

    Holds the device at four distances, clicks once, and returns the
    recorder payload — enough activity to populate every firmware
    per-stage histogram plus the kernel/ADC/I2C counters.
    """
    from repro.core.device import DistScroll
    from repro.core.menu import build_menu
    from repro.obs import Recorder, use_recorder

    recorder = Recorder()
    with use_recorder(recorder):
        device = DistScroll(
            build_menu([f"Item {i}" for i in range(10)]), seed=seed
        )
        for distance in (6.0, 12.0, 18.0, 24.0):
            device.hold_at(distance)
            device.run_for(0.75)
        device.click("select")
        recorder.record_snapshot(device.tracer, device.sim.now)
    return recorder.payload()


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs import format_spans, to_chrome_trace, to_jsonl

    experiment_id = args.experiment_id.upper()
    result = _observed_result(experiment_id, args.seed, args.jobs)
    if result is None:
        return 2
    payload = result.obs or {}
    print(format_spans(payload))
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        if args.format == "jsonl":
            path.write_text(to_jsonl(payload))
            print(f"wrote {path}")
        else:
            path.write_text(to_chrome_trace(payload, title=experiment_id))
            print(f"wrote {path} (open in https://ui.perfetto.dev)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import format_metrics

    if args.experiment_id is None:
        payload = _device_session_payload(args.seed)
        print(
            "scripted device session "
            f"(seed {args.seed}; pass an experiment id for a real run)\n"
        )
    else:
        result = _observed_result(
            args.experiment_id.upper(), args.seed, args.jobs
        )
        if result is None:
            return 2
        payload = result.obs or {}
    print(format_metrics(payload, histograms=not args.no_histograms))
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.runner import ResultCache, run_experiments

    if args.only:
        experiment_ids = [
            token.strip().upper()
            for token in args.only.split(",")
            if token.strip()
        ]
        unknown = [i for i in experiment_ids if i not in EXPERIMENT_RUNNERS]
        if unknown:
            print(
                f"unknown experiment ids: {', '.join(unknown)}; "
                "see `python -m repro experiments`",
                file=sys.stderr,
            )
            return 2
    else:
        experiment_ids = list(EXPERIMENT_RUNNERS)

    options = _runner_options(args)
    if options is None:
        return 2
    if options["resume"] and args.no_cache:
        print(
            "--resume is shard-cache driven and cannot be combined with"
            " --no-cache",
            file=sys.stderr,
        )
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if (
        options["resume"]
        and options["manifest_path"] is None
        and cache is not None
    ):
        options["manifest_path"] = (
            cache.root / "manifests" / f"run-all-seed{args.seed}.json"
        )
    _results, bench = run_experiments(
        experiment_ids,
        seed=args.seed,
        jobs=max(1, args.jobs),
        cache=cache,
        csv_dir=args.csv_dir,
        bench_path=args.bench,
        echo=print,
        **options,
    )
    print(
        f"\n{bench['experiment_count']} experiments "
        f"({bench['cached_count']} cached) in "
        f"{bench['total_wall_s']:.2f}s wall with --jobs {bench['jobs']} "
        f"({bench['backend']} backend); "
        f"serial-equivalent {bench['serial_equivalent_s']:.2f}s "
        f"(speedup {bench['speedup_vs_serial']:.2f}x; computed-only "
        f"{bench['speedup_vs_serial_computed_only']:.2f}x)"
    )
    if args.bench:
        print(f"wrote {args.bench}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig4

    result, calibration = run_fig4(seed=args.seed)
    print(result.table())
    fit = calibration.hyperbola
    print(
        f"\nspecimen curve: V = {fit.a:.3f}/(d + {fit.b:.3f}) + {fit.c:.4f}"
    )
    return 0


def _cmd_islands(args: argparse.Namespace) -> int:
    from repro.core.islands import Placement, build_island_map
    from repro.hardware.adc import ADC
    from repro.sensors.gp2d120 import GP2D120

    placement = Placement(args.placement)
    island_map = build_island_map(
        GP2D120(rng=None),
        ADC(rng=None),
        args.entries,
        range_cm=(args.near, args.far),
        island_fill=args.fill,
        placement=placement,
    )
    print(
        f"island map: {args.entries} entries over {args.near}-{args.far} cm, "
        f"fill {args.fill}, placement {placement.value}"
    )
    print(f"{'slot':>4} {'center_cm':>10} {'codes':>13} {'width':>6}")
    for slot in range(island_map.n_slots):
        island = island_map.island_for_slot(slot)
        print(
            f"{slot:>4} {island.center_distance_cm:>10.2f} "
            f"[{island.code_low:>4},{island.code_high:>4}] "
            f"{island.width_codes:>6}"
        )
    print(f"coverage: {island_map.coverage_fraction():.3f}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.apps.phonemenu import PhoneApp

    app = PhoneApp.create(seed=args.seed)
    device = app.device
    firmware = device.firmware
    print("DistScroll demo on the fictive phone menu (§6)\n")
    n_top = len(firmware.cursor.entries)
    for index in (0, n_top // 3, 2 * n_top // 3, n_top - 1):
        distance = firmware.aim_distance_for_index(index)
        device.hold_at(distance)
        device.run_for(0.5)
        print(f"  {distance:5.1f} cm -> {device.highlighted_label}")
    device.hold_at(firmware.aim_distance_for_index(0))
    device.run_for(0.5)
    device.click("select")
    print(f"\n  select -> entered {device.firmware.cursor.breadcrumb}")
    print("  top display:")
    for line in device.visible_menu():
        print(f"    |{line:<17}|")
    return 0


def _git_changed_paths(root: Path) -> Optional[list[str]]:
    """Changed/untracked ``*.py`` files under ``root``, lint-root-relative.

    Returns ``None`` when ``root`` is not inside a git work tree (the
    caller turns that into a usage error).
    """
    import subprocess

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    root_resolved = Path(root).resolve()
    changed: list[str] = []
    for line in status.splitlines():
        if len(line) < 4:
            continue
        path_part = line[3:].strip()
        if " -> " in path_part:  # renames: lint the new name
            path_part = path_part.split(" -> ")[-1]
        path_part = path_part.strip('"')
        absolute = (Path(top) / path_part).resolve()
        try:
            rel = absolute.relative_to(root_resolved)
        except ValueError:
            continue
        if rel.suffix == ".py":
            changed.append(rel.as_posix())
    return changed


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.devtools import (
        Baseline,
        LintCache,
        LintEngine,
        default_project_rules,
        default_rules,
        format_json,
        format_text,
    )
    from repro.devtools.baseline import discover_baseline

    if args.root is not None:
        root = Path(args.root)
    else:
        import repro

        root = Path(repro.__file__).parent
    if not root.is_dir():
        print(f"lint root {root} is not a directory", file=sys.stderr)
        return 2

    per_file_rules = default_rules()
    project_rules = default_project_rules()
    known = {rule.rule_id for rule in per_file_rules} | {
        rule.rule_id for rule in project_rules
    }
    if args.rules is not None:
        wanted = {
            token.strip().upper()
            for token in args.rules.split(",")
            if token.strip()
        }
        unknown = wanted - known
        if not wanted:
            print(
                "no rule ids given; "
                f"available: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        if unknown:
            print(
                f"unknown rule ids: {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        per_file_rules = tuple(
            r for r in per_file_rules if r.rule_id in wanted
        )
        project_rules = tuple(
            r for r in project_rules if r.rule_id in wanted
        )
    full_run = args.rules is None and not args.changed

    cache = None
    if args.cache_dir is not None:
        cache = LintCache(Path(args.cache_dir))

    only_paths = None
    engine = LintEngine(per_file_rules, project_rules)
    if args.changed:
        changed = _git_changed_paths(root)
        if changed is None:
            print(
                f"--changed requires {root} to be inside a git work tree",
                file=sys.stderr,
            )
            return 2
        only_paths = engine.changed_selection(root, changed)
        if not only_paths:
            print("repro lint --changed: no changed files under "
                  f"{root}; nothing to lint")
            return 0

    result = engine.lint_project(root, cache=cache, only_paths=only_paths)
    if cache is not None:
        cache.save()
    findings = result.findings

    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = discover_baseline(root)

    if args.write_baseline:
        target = baseline_path or root / "reprolint-baseline.json"
        previous = Baseline.load_optional(baseline_path)
        Baseline.from_findings(findings, previous=previous).save(target)
        print(f"wrote baseline with {len(findings)} entr(ies) to {target}")
        return 0

    if (
        args.baseline is not None
        and baseline_path is not None
        and not baseline_path.is_file()
    ):
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2

    baseline = Baseline.load_optional(baseline_path)
    findings = baseline.apply(findings)

    if args.fix:
        from repro.devtools.fixer import fix_tree

        fixable = sorted(
            {
                f.path
                for f in findings
                if not f.suppressed and f.rule in ("REP002", "REP008")
            }
        )
        fixed = fix_tree(root, fixable)
        if fixed.files_changed:
            print(
                f"repro lint --fix: applied {fixed.fixes} fix(es) in "
                f"{len(fixed.files_changed)} file(s): "
                f"{', '.join(fixed.files_changed)}"
            )
            # Re-lint so the report (and the exit code) reflect the
            # fixed tree, not the findings that prompted the fixes.
            result = engine.lint_project(
                root, cache=cache, only_paths=only_paths
            )
            if cache is not None:
                cache.save()
            findings = baseline.apply(result.findings)
        else:
            print("repro lint --fix: nothing auto-fixable")

    stale = baseline.unmatched_entries(findings) if full_run else []
    if args.prune_baseline:
        if not full_run:
            print(
                "--prune-baseline needs a full run (no --changed/--rules):"
                " a partial run makes every unexecuted rule's entries look"
                " stale",
                file=sys.stderr,
            )
            return 2
        if baseline_path is None:
            print("--prune-baseline: no baseline in use", file=sys.stderr)
            return 2
        if stale:
            baseline.without(stale).save(baseline_path)
            print(
                f"pruned {len(stale)} stale baseline entr(ies) from "
                f"{baseline_path}"
            )
            stale = []
        else:
            print(f"no stale entries in {baseline_path}")

    if args.format == "json":
        print(format_json(findings, engine.rule_ids(), str(root)), end="")
    else:
        print(
            format_text(
                findings, engine.rule_ids(), str(root), verbose=args.verbose
            )
        )
        if args.verbose:
            stats = result.stats
            print(
                f"stats: {stats.files} file(s), {stats.linted} linted, "
                f"{stats.cache_hits} cache hit(s), {stats.parsed} parsed"
            )
        if stale:
            print(
                f"note: {len(stale)} stale baseline entr(ies) no longer "
                "match any finding — run `repro lint --prune-baseline` "
                f"to drop them from {baseline_path or 'the baseline'}"
            )
    reported = sum(1 for f in findings if not f.suppressed)
    return 1 if reported else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.perf import check_report, run_benchmarks
    from repro.perf.bench import BENCHMARKS, load_report

    if args.list:
        for name in BENCHMARKS:
            print(name)
        return 0

    only = None
    if args.only:
        only = [
            token.strip() for token in args.only.split(",") if token.strip()
        ]
        unknown = [name for name in only if name not in BENCHMARKS]
        if unknown:
            print(
                f"unknown benchmarks: {', '.join(unknown)}; "
                "see `python -m repro bench --list`",
                file=sys.stderr,
            )
            return 2

    try:
        report = run_benchmarks(only=only, quick=args.quick, echo=print)
    except KeyError as error:
        # Safety net behind the pre-validation above: run_benchmarks
        # raises KeyError for names it does not know, and a raw
        # traceback must never escape the CLI.  Exit 2 matches the
        # documented missing-baseline/bad-arguments code.
        print(
            f"{error.args[0]}; valid names: {', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}")

    if args.check is None:
        return 0
    baseline_path = Path(args.check)
    if not baseline_path.is_file():
        print(f"baseline {baseline_path} not found", file=sys.stderr)
        return 2
    failures = check_report(
        report,
        load_report(baseline_path),
        threshold=args.threshold,
        min_speedup=args.min_speedup,
        min_efficiency=args.min_efficiency,
    )
    if failures:
        print(
            f"\nperf gate FAILED against {baseline_path}:", file=sys.stderr
        )
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed against {baseline_path}")
    return 0


def _add_runner_v2_flags(parser: argparse.ArgumentParser) -> None:
    """The executor/resume/speculation flags shared by run and run-all."""
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="executor backend: inline, pool (default for --jobs > 1) "
        "or workqueue (long-lived workers over shared queues, survives "
        "worker loss); any backend produces byte-identical CSVs",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run: completed shards are read "
        "back from the shard cache and only the missing ones are "
        "recomputed (the manifest records the split)",
    )
    parser.add_argument(
        "--speculate",
        action="store_true",
        help="re-execute straggler shards on idle workers once the "
        "queue drains; first result wins, both digests must agree",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the resumable run manifest here (default with "
        "--resume: under the cache directory)",
    )
    parser.add_argument(
        "--inject-crash",
        action="append",
        default=None,
        metavar="EXPID:SHARD[:COUNT]",
        help="kill the worker executing this shard mid-flight COUNT "
        "times (workqueue backend only; CI/fault-injection machinery)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DistScroll reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "experiments", help="list experiment ids"
    ).set_defaults(func=_cmd_experiments)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--csv", default=None, help="also write CSV here")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard across N worker processes (same rows as serial)",
    )
    _add_runner_v2_flags(run_parser)
    run_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="run observed and write a Chrome trace-event JSON here "
        "(byte-identical for any --jobs value; opens in Perfetto)",
    )
    run_parser.add_argument(
        "--users",
        type=int,
        default=None,
        metavar="N",
        help="STUDY1/ARENA: run the population-scale persona study (or "
        "technique arena) with N simulated users (streaming "
        "aggregation, O(1) memory; byte-identical for any --jobs "
        "value)",
    )
    run_parser.add_argument(
        "--personas",
        default=None,
        metavar="SPEC",
        help="persona population spec for --users (or ARENA): 'full', "
        "'bare', or 'dim=v1,v2;...' restrictions "
        "(e.g. 'glove=winter,arctic')",
    )
    run_parser.add_argument(
        "--battery",
        default=None,
        metavar="NAME",
        help="task battery for --users (or ARENA; default 'scrolltest')",
    )
    run_parser.set_defaults(func=_cmd_run)

    run_all_parser = sub.add_parser(
        "run-all",
        help="run the experiment suite in parallel with result caching",
    )
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    _add_runner_v2_flags(run_all_parser)
    run_all_parser.add_argument(
        "--only",
        default=None,
        metavar="ID,ID",
        help="comma-separated subset of experiment ids",
    )
    run_all_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    run_all_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default $REPRO_CACHE_DIR or .repro_cache)",
    )
    run_all_parser.add_argument(
        "--csv-dir",
        default=None,
        help="write each experiment's CSV into this directory",
    )
    run_all_parser.add_argument(
        "--bench",
        default="BENCH_runner.json",
        help="timing report path (default BENCH_runner.json)",
    )
    run_all_parser.set_defaults(func=_cmd_run_all)

    calibrate_parser = sub.add_parser(
        "calibrate", help="print the Figure-4 sensor sweep"
    )
    calibrate_parser.add_argument("--seed", type=int, default=0)
    calibrate_parser.set_defaults(func=_cmd_calibrate)

    demo_parser = sub.add_parser("demo", help="scripted device walk-through")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.set_defaults(func=_cmd_demo)

    islands_parser = sub.add_parser(
        "islands", help="print the island table for a configuration"
    )
    islands_parser.add_argument("--entries", type=int, default=10)
    islands_parser.add_argument("--near", type=float, default=5.0)
    islands_parser.add_argument("--far", type=float, default=28.0)
    islands_parser.add_argument("--fill", type=float, default=0.62)
    islands_parser.add_argument(
        "--placement",
        default="equal-distance",
        choices=[p.value for p in __import__(
            "repro.core.islands", fromlist=["Placement"]
        ).Placement],
    )
    islands_parser.set_defaults(func=_cmd_islands)

    lint_parser = sub.add_parser(
        "lint", help="run the reprolint invariant checks (REP001-REP009)"
    )
    lint_parser.add_argument(
        "--root",
        default=None,
        help="tree to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: discover reprolint-baseline.json "
        "above the lint root)",
    )
    lint_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    lint_parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default text)",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        metavar="ID,ID",
        help="comma-separated subset of rule ids to run",
    )
    lint_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also print baselined (suppressed) findings",
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings "
        "(preserves existing justifications)",
    )
    lint_parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only git-changed files plus their reverse "
        "import-dependents (requires a git work tree)",
    )
    lint_parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (wrap set iteration in sorted(), "
        "rewrite legacy np.random calls to seeded generators) and "
        "re-lint",
    )
    lint_parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries that no longer match any finding "
        "(default behaviour only warns about them)",
    )
    lint_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="enable the content-addressed incremental cache in DIR "
        "(warm re-lints skip unchanged files)",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    bench_parser = sub.add_parser(
        "bench",
        help="run the headless perf suite with a regression gate",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads, one round (the CI smoke setting)",
    )
    bench_parser.add_argument(
        "--only",
        default=None,
        metavar="NAME,NAME",
        help="comma-separated subset of benchmark names",
    )
    bench_parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="report path (default BENCH_perf.json)",
    )
    bench_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_perf.json; exit 1 on "
        "regression",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated throughput drop vs baseline (default 0.25)",
    )
    bench_parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required vectorized calibration speedup (default 3.0)",
    )
    bench_parser.add_argument(
        "--min-efficiency",
        type=float,
        default=0.8,
        help="required scheduler worker utilisation on the skewed "
        "fan-out, full mode only (default 0.8)",
    )
    bench_parser.add_argument(
        "--list",
        action="store_true",
        help="list benchmark names and exit",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    trace_parser = sub.add_parser(
        "trace",
        help="run one experiment observed and summarize its sim-time spans",
    )
    trace_parser.add_argument("experiment_id")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="PATH", help="also write a trace file"
    )
    trace_parser.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="--out format: Chrome trace-event JSON (Perfetto) or JSONL",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics",
        help="print the metric report of an observed run",
    )
    metrics_parser.add_argument(
        "experiment_id",
        nargs="?",
        default=None,
        help="experiment id (omit for a scripted device session)",
    )
    metrics_parser.add_argument("--seed", type=int, default=0)
    metrics_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default 1)"
    )
    metrics_parser.add_argument(
        "--no-histograms",
        action="store_true",
        help="suppress the per-bin histogram bars",
    )
    metrics_parser.set_defaults(func=_cmd_metrics)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

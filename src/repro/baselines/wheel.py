"""Rotary/jog-wheel scrolling (TUISTER-style tangible UI).

The TUISTER [3] lets the user "turn part of a device thus exploring one
level of a menu structure", with the second part turned by *the other
hand* — the paper's main criticism: "for many application areas one
limitation is that both hands have to be used", plus the difficulty of
serving left- and right-handed users with one mechanical design.

The model: scrolling advances one entry per wheel detent; the fingers
can rotate only so far before re-grasping (clutching), and every detent
is a fine-motor act that thick gloves slow dramatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty

__all__ = ["WheelScroller"]


@dataclass
class WheelScroller(ScrollingTechnique):
    """Detent-per-entry rotary scrolling with clutching.

    Parameters
    ----------
    detent_time_s:
        Time per detent while turning continuously.
    detents_per_grasp:
        Detents reachable before the fingers must re-grasp.
    clutch_time_s:
        Re-grasp duration.
    """

    name: str = "wheel"
    one_handed: bool = False  # the TUISTER needs the second hand
    glove_compatible: bool = False  # fine finger rotation
    mechanical_parts: bool = True
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="wheel",
        title="Rotary jog wheel (TUISTER-style)",
        citation="TUISTER tangible UI (DistScroll §2 ref [3])",
        input_model=(
            "Mechanical detent encoder; fingers rotate one device half "
            "against the other, one detent per list entry."
        ),
        transfer_function=(
            "Position control, one entry per detent, with clutching "
            "(re-grasp) every few detents; thick gloves slow each "
            "fine-motor detent and add slip corrections."
        ),
        control_order="position",
    )
    detent_time_s: float = 0.07
    detents_per_grasp: int = 8
    clutch_time_s: float = 0.35

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Turn the wheel detent by detent (clutching as needed), select."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        steps = abs(target_index - start_index)
        trial.index_of_difficulty = index_of_difficulty(max(steps, 1e-6) + 1e-9, 1.0)
        # Both hands must find the device: homing cost.
        duration = self._lognormal(self.t.reaction_s) + self._lognormal(
            self.t.homing_s
        )
        detent = self.detent_time_s * self.glove.dexterity_time_factor
        remaining = steps
        while remaining > 0:
            burst = min(remaining, self.detents_per_grasp)
            duration += self._lognormal(burst * detent, 0.10)
            trial.operations += burst
            remaining -= burst
            # Glove slip: a detent may skip, requiring a correction turn.
            slip_p = self.glove.effective_miss_probability(25.0) * 0.5
            if self.rng.random() < slip_p:
                trial.errors += 1
                remaining += 1
            if remaining > 0:
                duration += self._lognormal(
                    self.clutch_time_s * self.glove.dexterity_time_factor, 0.15
                )
        duration += self._confirm_selection(trial)
        trial.duration_s = duration
        return trial

"""Pluggable executor backends for the parallel runner.

The scheduler in :mod:`repro.runner.pool` is backend-agnostic: it
submits :class:`ShardTask` work units, polls for :class:`Completion`
events in whatever order shards actually finish, and asks the backend
how much idle capacity it has (the signal that drives speculative
re-execution of stragglers).  Three backends implement that contract:

``inline``
    No processes at all.  Tasks execute one per ``poll`` call inside
    the driver, in submission order — the reference path that every
    other backend must match byte-for-byte.
``pool``
    ``concurrent.futures.ProcessPoolExecutor`` fan-out.  Fast and
    simple, but a dead worker poisons the whole pool, so crash
    injection and granular retry live in the work-queue backend.
``workqueue``
    Long-lived ``multiprocessing`` worker processes consuming a shared
    task queue and reporting on a result queue — the single-machine
    stand-in for a multi-machine fleet.  The driver sees ``start``
    events per attempt, detects worker death (by liveness, not by
    timeout), requeues the lost shard exactly once per crash, and
    spawns a replacement worker to keep capacity constant.  Tests
    inject deterministic crashes via ``crash_plan`` — the faults
    subsystem's discipline (seeded, declarative failure windows)
    applied to the runner's own workers: a planned crash makes the
    victim ``os._exit`` mid-shard, and the merged CSV must still be
    byte-identical to the inline run.

Work units are location-independent by construction — a task is
``(spec, seed, shard index, observe)`` and the shard is re-derived
O(1) inside the worker (:func:`repro.runner.sharding.make_shard`) — so
any attempt of any task on any worker produces the same bytes.  That
is the determinism argument that makes retry *and* speculation safe:
first result wins, and when both attempts finish the driver asserts
their digests match.

This module deliberately reads no clocks: all wall-time telemetry
(queue-wait, execute, merge spans) is measured by the driver in
``pool.py``, the one runner module exempt from the REP001 wall-clock
rule.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, runtime_checkable

from repro.runner.registry import ExperimentSpec
from repro.runner.sharding import ShardResult, execute_shard, make_shard

__all__ = [
    "BACKENDS",
    "TaskKey",
    "ShardTask",
    "Completion",
    "Executor",
    "ShardExecutionError",
    "InlineExecutor",
    "PoolExecutor",
    "WorkQueueExecutor",
    "make_executor",
]

#: ``(experiment_id, shard_index)`` — the identity of one work unit.
TaskKey = tuple[str, int]

#: Backend registry: name -> constructor.  ``make_executor`` resolves it.
BACKENDS = ("inline", "pool", "workqueue")


class ShardExecutionError(RuntimeError):
    """A shard failed inside a worker; carries the remote traceback."""

    def __init__(self, key: TaskKey, detail: str) -> None:
        super().__init__(
            f"shard {key[0]}[{key[1]}] failed in worker:\n{detail}"
        )
        self.key = key
        self.detail = detail


@dataclass(frozen=True)
class ShardTask:
    """One schedulable work unit (an attempt at a shard)."""

    key: TaskKey
    spec: ExperimentSpec
    seed: int
    observe: bool
    #: LPT ordering weight (``estimate_shard_cost``); larger runs first.
    cost: float


@dataclass
class Completion:
    """One finished attempt, success or failure."""

    key: TaskKey
    attempt: int
    result: Optional[ShardResult] = None
    #: The original exception (inline/pool) — re-raised by the driver.
    error: Optional[BaseException] = None
    #: Remote traceback text (workqueue) when ``error`` crossed a
    #: process boundary as a string.
    error_detail: Optional[str] = None


@runtime_checkable
class Executor(Protocol):
    """The backend contract the scheduler drives.

    ``submit`` enqueues an attempt at a shard; ``poll`` blocks up to
    ``timeout`` seconds and returns whatever attempts finished, in
    completion order; ``running``/``queued``/``idle_capacity`` expose
    the occupancy signals that drive speculation; ``cancel_pending``
    abandons all outstanding work (first-error cancellation) and
    ``close`` releases workers.  New backends (an actual multi-machine
    fleet, say) implement exactly these seven methods.
    """

    name: str

    def submit(self, task: "ShardTask", attempt: int = 0) -> None: ...

    def poll(self, timeout: float) -> list["Completion"]: ...

    def running(self) -> set[TaskKey]: ...

    def queued(self) -> int: ...

    def idle_capacity(self) -> int: ...

    def cancel_pending(self) -> None: ...

    def close(self) -> None: ...


def run_shard_task(
    spec: ExperimentSpec, seed: int, index: int, observe: bool
) -> ShardResult:
    """Worker entry: derive the single shard O(1) and execute it.

    Only ``(spec, seed, index, observe)`` crosses the process boundary —
    the spec is plain frozen data, so dynamic specs (e.g. a ``--users``
    population study not present in the registry) ship exactly like
    registry ones.  ``make_shard`` reconstructs shard ``index`` alone,
    so a worker running one shard of a million-user study no longer
    materializes the other S-1.
    """
    shard = make_shard(spec, seed, index)
    return execute_shard(spec, seed, shard, observe=observe)


class InlineExecutor:
    """Run tasks in-process, one per poll, in submission order."""

    name = "inline"

    def __init__(self, workers: int = 1) -> None:
        self.workers = 1
        self._queue: list[tuple[ShardTask, int]] = []

    def submit(self, task: ShardTask, attempt: int = 0) -> None:
        self._queue.append((task, attempt))

    def poll(self, timeout: float) -> list[Completion]:
        """Execute the next queued task and report it."""
        if not self._queue:
            return []
        task, attempt = self._queue.pop(0)
        try:
            result = run_shard_task(
                task.spec, task.seed, task.key[1], task.observe
            )
        except Exception as error:
            return [Completion(task.key, attempt, error=error)]
        return [Completion(task.key, attempt, result=result)]

    def running(self) -> set[TaskKey]:
        """Keys currently executing (inline never has any mid-poll)."""
        return set()

    def queued(self) -> int:
        return len(self._queue)

    def idle_capacity(self) -> int:
        return 0  # never speculate against ourselves

    def cancel_pending(self) -> None:
        self._queue.clear()

    def close(self) -> None:
        self._queue.clear()


class PoolExecutor:
    """``ProcessPoolExecutor`` fan-out with as-completed polling."""

    name = "pool"

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._futures: dict[Future[ShardResult], tuple[TaskKey, int]] = {}

    def submit(self, task: ShardTask, attempt: int = 0) -> None:
        future = self._pool.submit(
            run_shard_task, task.spec, task.seed, task.key[1], task.observe
        )
        self._futures[future] = (task.key, attempt)

    def poll(self, timeout: float) -> list[Completion]:
        if not self._futures:
            return []
        done, _pending = futures_wait(
            self._futures, timeout=timeout, return_when=FIRST_COMPLETED
        )
        completions: list[Completion] = []
        for future in done:
            key, attempt = self._futures.pop(future)
            error = future.exception()
            if error is not None:
                completions.append(Completion(key, attempt, error=error))
            else:
                completions.append(
                    Completion(key, attempt, result=future.result())
                )
        return completions

    def running(self) -> set[TaskKey]:
        return {
            key
            for future, (key, _attempt) in self._futures.items()
            if future.running()
        }

    def queued(self) -> int:
        return sum(
            1
            for future in self._futures
            if not future.running() and not future.done()
        )

    def idle_capacity(self) -> int:
        busy = sum(1 for future in self._futures if future.running())
        return max(0, self.workers - busy)

    def cancel_pending(self) -> None:
        for future in self._futures:
            future.cancel()

    def close(self) -> None:
        self.cancel_pending()
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._futures.clear()


def _workqueue_worker(
    worker_id: int,
    tasks: "multiprocessing.queues.Queue[Any]",
    results: "multiprocessing.queues.Queue[Any]",
) -> None:
    """Worker main loop: consume tasks until the ``None`` sentinel.

    Every attempt is announced with a ``start`` event before execution,
    so the driver knows exactly which shard a worker was holding if it
    dies.  A task whose ``crash`` flag is set simulates that death:
    the worker announces the start, then exits hard without a result —
    the deterministic stand-in for a machine loss mid-shard.
    """
    while True:
        item = tasks.get()
        if item is None:
            break
        key, attempt, spec, seed, index, observe, crash = item
        results.put(("start", worker_id, key, attempt))
        if crash:
            # ``Queue.put`` hands off to a feeder thread; flush it before
            # dying, or the driver never learns the shard was in flight.
            results.close()
            results.join_thread()
            os._exit(13)
        try:
            result = run_shard_task(spec, seed, index, observe)
        except BaseException:
            results.put(
                ("error", worker_id, key, attempt, traceback.format_exc())
            )
        else:
            results.put(("done", worker_id, key, attempt, result))


@dataclass
class _WorkerState:
    process: multiprocessing.process.BaseProcess
    #: Attempts announced (``start``) but not yet finished.
    in_flight: dict[TaskKey, int] = field(default_factory=dict)


class WorkQueueExecutor:
    """Work-queue fan-out over long-lived worker processes.

    The local stand-in for a distributed fleet: work units travel over
    a queue, workers are individually mortal, and the driver owns
    retry.  ``crash_plan`` maps a :data:`TaskKey` to how many times its
    execution should be killed mid-shard before being allowed to
    finish — the runner-level analogue of a
    :class:`repro.faults.FaultWindow`, injected deterministically so
    tests can prove merged bytes survive worker loss.
    """

    name = "workqueue"

    def __init__(
        self,
        workers: int,
        crash_plan: Optional[dict[TaskKey, int]] = None,
    ) -> None:
        self.workers = max(1, workers)
        self._context = multiprocessing.get_context()
        self._tasks: multiprocessing.queues.Queue[Any] = (
            self._context.Queue()
        )
        self._results: multiprocessing.queues.Queue[Any] = (
            self._context.Queue()
        )
        self._crashes_remaining = dict(crash_plan or {})
        self.retries: dict[TaskKey, int] = {}
        self._tasks_by_key: dict[TaskKey, ShardTask] = {}
        self._queued = 0
        self._next_worker_id = 0
        self._workers: dict[int, _WorkerState] = {}
        self._done_keys: set[TaskKey] = set()
        self._closed = False
        for _ in range(self.workers):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._context.Process(
            target=_workqueue_worker,
            args=(worker_id, self._tasks, self._results),
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = _WorkerState(process)

    def _enqueue(self, task: ShardTask, attempt: int) -> None:
        crash = self._crashes_remaining.get(task.key, 0) > 0
        if crash:
            self._crashes_remaining[task.key] -= 1
        self._tasks.put(
            (
                task.key,
                attempt,
                task.spec,
                task.seed,
                task.key[1],
                task.observe,
                crash,
            )
        )
        self._queued += 1

    def submit(self, task: ShardTask, attempt: int = 0) -> None:
        self._tasks_by_key[task.key] = task
        self._enqueue(task, attempt)

    def _reap_dead_workers(self) -> None:
        """Requeue the in-flight work of any worker that died."""
        dead = [
            worker_id
            for worker_id, state in self._workers.items()
            if not state.process.is_alive()
        ]
        for worker_id in dead:
            state = self._workers.pop(worker_id)
            state.process.join()
            for key, attempt in state.in_flight.items():
                if key in self._done_keys:
                    continue  # a speculative twin already delivered it
                self.retries[key] = self.retries.get(key, 0) + 1
                self._enqueue(self._tasks_by_key[key], attempt + 1)
            self._spawn_worker()

    def poll(self, timeout: float) -> list[Completion]:
        completions: list[Completion] = []
        try:
            message = self._results.get(timeout=timeout)
        except queue_module.Empty:
            self._reap_dead_workers()
            return completions
        while True:
            kind, worker_id, key, attempt = message[:4]
            state = self._workers.get(worker_id)
            if kind == "start":
                self._queued -= 1
                if state is not None:
                    state.in_flight[key] = attempt
            elif kind == "done":
                if state is not None:
                    state.in_flight.pop(key, None)
                self._done_keys.add(key)
                completions.append(Completion(key, attempt, result=message[4]))
            else:  # error
                if state is not None:
                    state.in_flight.pop(key, None)
                completions.append(
                    Completion(key, attempt, error_detail=message[4])
                )
            try:
                message = self._results.get_nowait()
            except queue_module.Empty:
                break
        return completions

    def running(self) -> set[TaskKey]:
        keys: set[TaskKey] = set()
        for state in self._workers.values():
            keys.update(state.in_flight)
        return keys

    def queued(self) -> int:
        return self._queued

    def idle_capacity(self) -> int:
        busy = sum(
            1 for state in self._workers.values() if state.in_flight
        )
        alive = sum(
            1
            for state in self._workers.values()
            if state.process.is_alive()
        )
        return max(0, alive - busy)

    def cancel_pending(self) -> None:
        """Tear down the fleet immediately (first-error cancellation)."""
        for state in self._workers.values():
            if state.process.is_alive():
                state.process.terminate()
        for state in self._workers.values():
            state.process.join(timeout=5.0)
        self._workers.clear()
        self._drain_queues()

    def _drain_queues(self) -> None:
        for channel in (self._tasks, self._results):
            while True:
                try:
                    channel.get_nowait()
                except (queue_module.Empty, OSError):
                    break

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for state in self._workers.values():
            if state.process.is_alive():
                self._tasks.put(None)
        for state in self._workers.values():
            state.process.join(timeout=5.0)
            if state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=5.0)
        self._workers.clear()
        self._tasks.close()
        self._results.close()


def make_executor(
    backend: str,
    jobs: int,
    crash_plan: Optional[dict[TaskKey, int]] = None,
) -> Executor:
    """Construct the named backend.

    ``crash_plan`` is only meaningful on the work-queue backend — the
    other backends cannot survive a worker loss, so asking for an
    injected crash there is a caller error, not a silent no-op.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    if crash_plan and backend != "workqueue":
        raise ValueError(
            "crash injection requires the workqueue backend"
            f" (got {backend!r})"
        )
    if backend == "inline":
        return InlineExecutor()
    if backend == "pool":
        return PoolExecutor(jobs)
    return WorkQueueExecutor(jobs, crash_plan=crash_plan)

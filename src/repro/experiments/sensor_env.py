"""SENS-ENV — curve invariance across clothing and light (§4.2).

"Another important characteristic of the Sharp infra red distance sensor
is, that the color (the reflectivity) of the object in front of the
sensor does nearly not matter. ... These properties ... were verified in
different light conditions and with different clothing as surfaces in
front of the sensor."  And the caveat: "Potentially problematic could be
reflective surfaces with clear boundaries between the parts of the
surface."

The experiment re-runs the Figure 4 calibration for every clothing x
light combination and reports how much the fitted curve moves.  Expected
shape: ordinary clothing shifts the curve by at most a few percent in any
light; the retroreflective vest and the mirror patchwork blow up the
residuals via corrupted readings.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.sensors.calibration import sweep_environments
from repro.sensors.surfaces import AMBIENT_CONDITIONS, CLOTHING

__all__ = ["run_sensor_env"]


def run_sensor_env(
    seed: int = 0,
    readings_per_point: int = 8,
    surfaces: list[str] | None = None,
    ambients: list[str] | None = None,
) -> ExperimentResult:
    """Sweep surfaces x light conditions; report fit drift per condition."""
    surface_keys = surfaces or list(CLOTHING)
    ambient_keys = ambients or ["dark", "indoor", "sunlight"]
    rng = np.random.default_rng(seed)
    results = sweep_environments(
        rng,
        {k: CLOTHING[k] for k in surface_keys},
        {k: AMBIENT_CONDITIONS[k] for k in ambient_keys},
        readings_per_point=readings_per_point,
    )

    # Reference: white shirt indoors (closest to the datasheet condition).
    ref_key = (surface_keys[0], "indoor") if "indoor" in ambient_keys else (
        surface_keys[0],
        ambient_keys[0],
    )
    reference = results[ref_key]
    ref_voltages = reference.voltages

    result = ExperimentResult(
        experiment_id="SENS-ENV",
        title="Calibration drift across clothing surfaces and light",
        columns=(
            "surface",
            "light",
            "fit_a",
            "fit_b",
            "fit_c",
            "rms_residual_mV",
            "max_dev_vs_ref_pct",
        ),
    )
    benign_devs = []
    for (surface_key, ambient_key), calibration in sorted(results.items()):
        fit = calibration.hyperbola
        deviation = (
            np.abs(calibration.voltages - ref_voltages) / ref_voltages * 100.0
        )
        max_dev = float(deviation.max())
        result.add_row(
            surface_key,
            ambient_key,
            fit.a,
            fit.b,
            fit.c,
            fit.residual_rms * 1000.0,
            max_dev,
        )
        surface = CLOTHING[surface_key]
        if surface.corruption_probability < 0.01:
            benign_devs.append(max_dev)
    result.note(
        f"benign clothing: max deviation vs reference {max(benign_devs):.1f}% "
        "— 'the color (the reflectivity) ... does nearly not matter'"
    )
    problematic = [
        key
        for key in surface_keys
        if CLOTHING[key].corruption_probability >= 0.01
    ]
    if problematic:
        result.note(
            f"problematic surfaces (specular boundaries): {', '.join(problematic)} "
            "— elevated residuals from deflected-beam readings, as §4.2 warns"
        )
    return result

"""Tests for the DistScroll facade, event types, and RF serialization."""

from __future__ import annotations

import pytest

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.events import (
    ButtonEvent,
    EntryActivated,
    HighlightChanged,
    decode_event,
)
from repro.core.menu import build_menu


class TestDeviceFacade:
    def test_accepts_spec_dict(self):
        device = DistScroll({"A": [], "B": []}, noisy=False)
        assert device.highlighted_label in ("A", "B")

    def test_accepts_label_list(self):
        device = DistScroll(["A", "B", "C"], noisy=False)
        device.hold_at(25.0)
        device.run_for(0.3)
        assert device.highlighted_label == "A"

    def test_quickstart_docstring_flow(self):
        device = DistScroll(
            build_menu(
                {"Messages": ["Inbox", "Outbox"], "Settings": ["Sound", "Display"]}
            ),
            seed=42,
        )
        device.hold_at(20.0)
        device.run_for(0.5)
        assert device.highlighted_label == "Messages"
        device.press("select")
        device.run_for(0.2)
        device.release("select")
        device.run_for(0.1)
        assert device.visible_menu()[0] == ">Inbox"

    def test_click_registers_once(self):
        device = DistScroll({"A": ["a1"], "B": []}, noisy=False)
        device.run_for(0.2)
        device.click("select")
        presses = [
            e
            for _, e in device.events()
            if e.kind == "ButtonEvent" and e.name == "select"
        ]
        assert len(presses) == 1

    def test_now_tracks_sim(self):
        device = DistScroll(["A", "B"], noisy=False)
        device.run_for(1.5)
        assert device.now == pytest.approx(1.5)

    def test_shared_simulator(self, sim):
        device = DistScroll(["A", "B"], simulator=sim, noisy=False)
        assert device.sim is sim

    def test_events_trace_accumulates(self):
        device = DistScroll(["A", "B", "C", "D"], noisy=False)
        device.hold_at(25.0)
        device.run_for(0.3)
        device.hold_at(7.0)
        device.run_for(0.4)
        events = device.events()
        assert events
        times = [t for t, _ in events]
        assert times == sorted(times)


class TestEventSerialization:
    def test_roundtrip_highlight_changed(self):
        event = HighlightChanged(time=1.5, index=3, label="Games", previous_index=2)
        decoded = decode_event(event.to_bytes())
        assert decoded == event

    def test_roundtrip_entry_activated(self):
        event = EntryActivated(
            time=2.0, label="Inbox", action="inbox", path=("Messages", "Inbox")
        )
        decoded = decode_event(event.to_bytes())
        assert decoded == event
        assert isinstance(decoded.path, tuple)

    def test_roundtrip_button(self):
        event = ButtonEvent(time=0.1, name="select", pressed=True)
        assert decode_event(event.to_bytes()) == event

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_event(b"\xff\x00garbage")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_event(b'{"kind": "Mystery", "time": 0}')

    def test_host_can_decode_rf_stream(self):
        """End to end: firmware events decoded on the PC side."""
        device = DistScroll(["A", "B", "C", "D", "E"], seed=3, noisy=False)
        device.hold_at(25.0)
        device.run_for(0.3)
        device.hold_at(7.0)
        device.run_for(0.4)
        decoded = [decode_event(p.payload) for p in device.board.rf_host.received]
        assert any(e.kind == "HighlightChanged" for e in decoded)


class TestConfigValidation:
    def test_far_bound_beyond_sensor_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(range_cm=(5.0, 35.0))

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(range_cm=(20.0, 10.0))

    def test_bad_fill_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(island_fill=1.5)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            DeviceConfig(firmware_hz=0.0)
        with pytest.raises(ValueError):
            DeviceConfig(fast_scroll_rate_hz=0.0)
        with pytest.raises(ValueError):
            DeviceConfig(confirm_samples=0)

    def test_with_helper(self):
        config = DeviceConfig()
        narrowed = config.with_(range_cm=(6.0, 20.0))
        assert narrowed.range_cm == (6.0, 20.0)
        assert narrowed.chunk_size == config.chunk_size

    def test_span(self):
        assert DeviceConfig(range_cm=(5.0, 25.0)).span_cm == 20.0

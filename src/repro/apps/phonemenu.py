"""The fictive mobile-phone menu of the initial user study (§6).

"We simulated a fictive mobile phone menu and used the second display to
provide debug information.  We later plan to provide the user with
information necessary for conducting the user study itself, such as
instructions which items are to be searched or selected."

:data:`PHONE_MENU_SPEC` is a period-accurate phone menu tree;
:class:`PhoneApp` binds it to a device, records activated actions, and
implements the *planned* instruction display: study tasks are pushed to
the bottom display so the simulated participant knows what to select.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.events import EntryActivated, InteractionEvent
from repro.core.menu import MenuEntry, build_menu
from repro.hardware.board import I2C_ADDR_DISPLAY_BOTTOM
from repro.hardware.display import BT96040

__all__ = ["PHONE_MENU_SPEC", "build_phone_menu", "PhoneApp"]

#: A 2005-vintage phone menu: 9 top-level items, two to three levels deep.
PHONE_MENU_SPEC: dict = {
    "Messages": {
        "Write message": [],
        "Inbox": [],
        "Outbox": [],
        "Drafts": [],
        "Templates": [],
    },
    "Call register": ["Missed calls", "Received calls", "Dialled numbers"],
    "Contacts": ["Search", "Add contact", "Delete", "Speed dials"],
    "Settings": {
        "Tone settings": ["Ringing tone", "Volume", "Vibrating alert"],
        "Display": ["Wallpaper", "Contrast", "Backlight"],
        "Time and date": ["Clock", "Date", "Auto-update"],
        "Security": ["PIN code", "Call barring"],
    },
    "Gallery": ["Photos", "Tones", "Graphics"],
    "Organiser": ["Alarm clock", "Calendar", "To-do list", "Notes"],
    "Games": ["Snake", "Space impact", "Bantumi"],
    "Extras": ["Calculator", "Countdown timer", "Stopwatch"],
    "Services": [],
}


def build_phone_menu() -> MenuEntry:
    """The study's menu as a tree (fresh instance each call)."""
    return build_menu(PHONE_MENU_SPEC, label="phone")


@dataclass
class PhoneApp:
    """Application glue: the phone menu running on a DistScroll.

    Attributes
    ----------
    device:
        The bound device (created by :meth:`create` or supplied).
    activations:
        ``(time, action, path)`` records of every activated leaf.
    """

    device: DistScroll
    activations: list[tuple[float, str, tuple[str, ...]]] = field(
        default_factory=list
    )

    @classmethod
    def create(
        cls, seed: int = 0, config: DeviceConfig | None = None
    ) -> "PhoneApp":
        """Build a device around the phone menu and attach the app."""
        device = DistScroll(build_phone_menu(), config=config, seed=seed)
        app = cls(device=device)
        device.on_event(app._handle_event)
        return app

    def _handle_event(self, event: InteractionEvent) -> None:
        if isinstance(event, EntryActivated):
            self.activations.append(
                (event.time, event.action or event.label, event.path)
            )

    def show_instruction(self, text: str) -> None:
        """Push a study instruction to the bottom display.

        Implements the paper's plan to use the second display for
        "instructions which items are to be searched or selected".
        Requires ``debug_display=False`` in the config to be visible
        (otherwise the firmware's debug output overwrites it).
        """
        board = self.device.board
        lines = ["TASK:"] + _wrap(text, width=16, lines=4)
        for i in range(5):
            payload = BT96040.encode_line(i, lines[i] if i < len(lines) else "")
            board.i2c.write(I2C_ADDR_DISPLAY_BOTTOM, payload)

    def last_activation(self) -> tuple[str, tuple[str, ...]] | None:
        """The most recent activated (action, path), if any."""
        if not self.activations:
            return None
        _, action, path = self.activations[-1]
        return action, path


def _wrap(text: str, width: int, lines: int) -> list[str]:
    words = text.split()
    wrapped: list[str] = []
    current = ""
    for word in words:
        if len(current) + len(word) + (1 if current else 0) <= width:
            current = f"{current} {word}".strip()
        else:
            wrapped.append(current)
            current = word
        if len(wrapped) == lines:
            break
    if current and len(wrapped) < lines:
        wrapped.append(current)
    return wrapped

"""Content-addressed incremental cache for the lint engine.

Same discipline as the runner's result cache (PR 2): everything is
keyed on content digests, never on timestamps, so a cache hit is a
*proof* of equivalence, not a heuristic.  Two stores live in one JSON
file:

* ``facts`` — phase-1 :class:`~repro.devtools.graph.FileFacts` keyed on
  the file's source digest (path + text).  Facts are a pure function of
  the source, so this key is complete.
* ``findings`` — phase-2 per-file findings keyed on
  ``H(engine version, rule ids, file digest, import-closure digest,
  global digest)``.  The closure digest covers everything the file's
  flow rules can see through imports; the global digest covers the
  cross-cutting facts (every spawn site's resolution + the stream
  registry), so e.g. adding a colliding spawn site in *another* module
  correctly invalidates this module's cached findings.

Only entries touched during the current run are persisted, so the cache
never grows beyond the live tree (dead digests from old edits are
dropped on every save).  A corrupt or version-skewed cache file is
treated as empty, never as an error — the cache must only ever make
linting faster, not change its result.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.devtools.findings import Finding
from repro.devtools.graph import FileFacts

__all__ = ["LintCache"]

_CACHE_FORMAT = 2


class LintCache:
    """On-disk facts + findings store for incremental lint runs."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "reprolint-cache.json"
        self._facts: dict[str, dict[str, object]] = {}
        self._findings: dict[str, list[dict[str, object]]] = {}
        self._touched_facts: set[str] = set()
        self._touched_findings: set[str] = set()
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != _CACHE_FORMAT:
            return
        facts = data.get("facts")
        findings = data.get("findings")
        if isinstance(facts, dict):
            self._facts = facts
        if isinstance(findings, dict):
            self._findings = findings

    # ------------------------------------------------------------------
    # facts store
    # ------------------------------------------------------------------
    def facts_for(self, digest: str) -> Optional[FileFacts]:
        raw = self._facts.get(digest)
        if raw is None:
            return None
        try:
            facts = FileFacts.from_json(raw)
        except (KeyError, TypeError, ValueError, AssertionError):
            return None
        self._touched_facts.add(digest)
        return facts

    def store_facts(self, digest: str, facts: FileFacts) -> None:
        self._facts[digest] = facts.to_json()
        self._touched_facts.add(digest)

    # ------------------------------------------------------------------
    # findings store
    # ------------------------------------------------------------------
    def findings_for(self, key: str) -> Optional[list[Finding]]:
        raw = self._findings.get(key)
        if raw is None:
            self.misses += 1
            return None
        try:
            findings = [Finding.from_dict(entry) for entry in raw]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self._touched_findings.add(key)
        self.hits += 1
        return findings

    def store_findings(self, key: str, findings: list[Finding]) -> None:
        self._findings[key] = [finding.to_dict() for finding in findings]
        self._touched_findings.add(key)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self) -> None:
        """Persist the entries touched this run (untouched ones die)."""
        payload = {
            "version": _CACHE_FORMAT,
            "facts": {
                digest: self._facts[digest]
                for digest in sorted(self._touched_facts)
                if digest in self._facts
            },
            "findings": {
                key: self._findings[key]
                for key in sorted(self._touched_findings)
                if key in self._findings
            },
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        tmp.replace(self.path)

"""Discrete-event simulation kernel.

Every piece of the DistScroll reproduction — the sensor, the microcontroller
firmware, the displays and the simulated user — runs on top of this kernel.
The kernel owns a virtual clock and a priority queue of pending events;
nothing in the library ever consults wall-clock time, so a run with a fixed
seed is fully deterministic and reproducible.

The public surface is intentionally small:

* :class:`Simulator` — the event queue and clock.
* :class:`Process` — a generator-based cooperative process (yield a delay in
  seconds to sleep).
* :class:`PeriodicTask` — a fixed-rate callback (e.g. an ADC sampling loop).

Example
-------
>>> sim = Simulator(seed=7)
>>> log = []
>>> sim.schedule(0.5, lambda: log.append(sim.now))
>>> sim.run_until(1.0)
>>> log
[0.5]
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import Counter
    from repro.obs.recorder import Recorder

__all__ = [
    "SimulationError",
    "Event",
    "Simulator",
    "Process",
    "PeriodicTask",
    "BatchTask",
    "global_events_processed",
    "global_batch_units_processed",
]

#: Process-wide count of executed events across every Simulator instance.
#: The parallel experiment runner reads this to report events/second per
#: work unit (and to prove that a cache hit recomputed nothing).
_global_event_count = 0

#: Process-wide count of batch work units (device-ticks) reported via
#: :meth:`Simulator.note_batch_units`.  One :class:`BatchTask` event can
#: advance hundreds of devices; the event count alone would make batched
#: runs look idle, so throughput reporting adds these units.
_global_batch_units = 0

#: Heap entries are plain ``(time, priority, seq, event)`` tuples so that
#: ``heappush``/``heappop`` compare via the C tuple fast path instead of a
#: Python-level ``__lt__``; ``seq`` is unique, so the event object itself
#: is never compared.
_QueueEntry = tuple[float, int, int, "Event"]

#: How many SeedSequence children :meth:`Simulator.spawn_rng` pre-spawns
#: per refill.  ``SeedSequence.spawn(n)`` derives the identical children
#: (same running spawn-key counter) as ``n`` separate ``spawn(1)`` calls,
#: so batching is invisible to every consumer stream.
_SPAWN_BATCH = 16

#: Compact the queue when more than half of it is cancelled corpses (and
#: it is large enough for the rebuild to be worth the heapify).
_COMPACT_MIN_CANCELLED = 64

#: Pre-drawn jitter values per :class:`PeriodicTask` refill.
_JITTER_BATCH = 64


def global_events_processed() -> int:
    """Total events executed by all simulators in this process."""
    return _global_event_count


def global_batch_units_processed() -> int:
    """Total batch work units reported by all simulators in this process."""
    return _global_batch_units


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class Event:
    """A scheduled callback.

    Events order by ``(time, priority, seq)``.  The sequence number makes the
    ordering of same-time events deterministic (FIFO within a priority),
    which matters for reproducibility.

    A ``__slots__`` class rather than a dataclass: events are the most
    allocated object in the simulation, and the heap itself holds
    ``(time, priority, seq, event)`` key tuples so event instances are
    never compared during sift operations.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_cancel_hook")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancel_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: Owning simulator's dead-event accounting; detached once the
        #: event leaves the queue so late cancels cannot skew the count.
        self._cancel_hook = cancel_hook

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._cancel_hook is not None:
                self._cancel_hook()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}{state})"
        )


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random generator.  Components that need
        randomness (sensor noise, tremor, bus errors) draw from
        :attr:`rng` — or from generators spawned via :meth:`spawn_rng` so
        that adding a new noise consumer does not perturb existing streams.
    start_time:
        Initial value of the clock, in seconds.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._queue: list[_QueueEntry] = []
        self._cancelled_in_queue = 0
        self._now = float(start_time)
        self._seq = itertools.count()
        self._running = False
        self._finished = False
        self._seed_seq = np.random.SeedSequence(seed)
        self._spawn_pool: list[np.random.SeedSequence] = []
        self.rng: np.random.Generator = np.random.default_rng(
            self._spawn_child()
        )
        self._event_count = 0
        # Observability binding happens once, at construction: when a
        # recorder is active we cache the instruments themselves, when
        # not (the default) we cache None so the hot loop pays only an
        # attribute load + identity check per event.  The import is
        # deferred because repro.obs imports repro.sim.
        from repro.obs.recorder import active_recorder

        recorder = active_recorder()
        self._obs_events: Optional["Counter"] = None
        self._obs_recorder: Optional["Recorder"] = None
        if recorder.enabled and recorder.metrics is not None:
            self._obs_events = recorder.metrics.counter(
                "kernel.events.dispatched"
            )
            self._obs_recorder = recorder
        self._batch_units = 0
        # Created lazily on the first note_batch_units call so that runs
        # which never batch keep their metric snapshots unchanged.
        self._obs_batch_units: Optional["Counter"] = None

    # ------------------------------------------------------------------
    # clock and RNG
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for benchmarks/tracing)."""
        return self._event_count

    @property
    def batch_units_processed(self) -> int:
        """Device-ticks folded into batch events (see :class:`BatchTask`).

        A batch event dispatches as *one* kernel event but advances many
        devices; this counter keeps throughput accounting honest by
        recording the per-device work units alongside ``events_processed``.
        """
        return self._batch_units

    @property
    def finished(self) -> bool:
        """Whether :meth:`run` drained the queue (resets on new events)."""
        return self._finished

    def note_batch_units(self, n: int) -> None:
        """Record ``n`` per-device work units performed by a batch event.

        Called by :class:`BatchTask` after each batched step so benchmarks
        can report device-seconds per wall-second even though the kernel
        only saw a single event. The ``kernel.batch.units`` counter is
        created lazily so observed runs without batching keep byte-identical
        metric snapshots.
        """
        global _global_batch_units
        self._batch_units += n
        _global_batch_units += n
        if self._obs_recorder is not None:
            if self._obs_batch_units is None:
                metrics = self._obs_recorder.metrics
                assert metrics is not None
                self._obs_batch_units = metrics.counter("kernel.batch.units")
            self._obs_batch_units.inc(n)

    def _spawn_child(self) -> np.random.SeedSequence:
        """Next child seed, served from a pre-spawned pool.

        ``SeedSequence.spawn`` threads a running counter into each child's
        spawn key, so ``spawn(n)`` yields exactly the children that ``n``
        single spawns would — pooling cuts the per-call spawn overhead in
        hot construction paths (every board builds ~8 components) without
        perturbing any stream.
        """
        if not self._spawn_pool:
            # Reversed so list.pop() serves children in spawn order.
            self._spawn_pool = self._seed_seq.spawn(_SPAWN_BATCH)[::-1]
        return self._spawn_pool.pop()

    def spawn_rng(self) -> np.random.Generator:
        """Return an independent random generator.

        Each call derives a child stream from the simulator's seed sequence,
        so separate components get decorrelated but reproducible noise.
        """
        return np.random.default_rng(self._spawn_child())

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may :meth:`Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule in the past (delay={delay}): the simulated "
                f"clock is at {self._now} and only moves forward — use a "
                "delay >= 0, or schedule_at() with a future absolute time"
            )
        time = self._now + delay
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, self._note_cancelled)
        heapq.heappush(self._queue, (time, priority, seq, event))
        self._finished = False
        if (
            self._cancelled_in_queue > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}: the clock already reached "
                f"{self._now} and never rewinds — pick a time >= now, or "
                "create a fresh Simulator for a new run"
            )
        return self.schedule(time - self._now, callback, priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Dead-event accounting hook handed to every scheduled event."""
        self._cancelled_in_queue += 1

    def _discard(self, event: Event) -> None:
        """Bookkeeping for an event leaving the queue without running."""
        event._cancel_hook = None
        self._cancelled_in_queue -= 1

    def _compact(self) -> None:
        """Purge cancelled corpses and re-heapify the survivors.

        Long-lived runs that churn :meth:`PeriodicTask.stop` /
        :meth:`Process.kill` otherwise accumulate dead entries that every
        ``heappush`` must sift past.  Rebuilding keeps the same
        ``(time, priority, seq)`` keys, so execution order is untouched.
        """
        for entry in self._queue:
            if entry[3].cancelled:
                entry[3]._cancel_hook = None
        before = len(self._queue)
        self._queue = [
            entry for entry in self._queue if not entry[3].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        if self._obs_recorder is not None:
            self._obs_recorder.counter("kernel.compactions")
            self._obs_recorder.observe(
                "kernel.compaction.purged",
                float(before - len(self._queue)),
                low=1.0,
                high=1e6,
            )

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        global _global_event_count
        while self._queue:
            event = heapq.heappop(self._queue)[3]
            if event.cancelled:
                self._discard(event)
                continue
            event._cancel_hook = None
            self._now = event.time
            self._event_count += 1
            _global_event_count += 1
            if self._obs_events is not None:
                self._obs_events.inc()
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then set the clock.

        Events scheduled exactly at ``end_time`` do run.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before now ({self._now})"
            )
        while self._queue:
            head = self._queue[0][3]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._discard(head)
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed).

        Raises
        ------
        SimulationError
            If the simulator already ran to completion and nothing new was
            scheduled since — a silent no-op here almost always means the
            caller forgot to schedule work or meant to build a new run.
        """
        if self._finished and not any(
            not entry[3].cancelled for entry in self._queue
        ):
            raise SimulationError(
                "this simulator already ran to completion and the event "
                "queue is empty — schedule new events before calling run() "
                "again, or create a fresh Simulator for a new run"
            )
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                return
        self._finished = True

    def run_while(self, condition: Callable[[], bool], max_time: float) -> None:
        """Run while ``condition()`` holds, but never past ``max_time``.

        Useful for "run until the user finishes the task or we time out".
        No event later than ``max_time`` ever executes, even when cancelled
        events sit at the head of the queue.
        """
        while condition():
            # Discard cancelled heads first: peeking a cancelled event's
            # time and then calling step() would execute the next *live*
            # event, which may lie past max_time.
            while self._queue and self._queue[0][3].cancelled:
                self._discard(heapq.heappop(self._queue)[3])
            if not self._queue or self._queue[0][0] > max_time:
                break
            self.step()
        if not condition():
            return
        self._now = max(self._now, max_time)


class Process:
    """A cooperative process driven by a generator.

    The generator yields non-negative floats: the number of simulated seconds
    to sleep before being resumed.  Returning (or ``StopIteration``) ends the
    process.

    Example
    -------
    >>> sim = Simulator()
    >>> ticks = []
    >>> def body():
    ...     for _ in range(3):
    ...         ticks.append(sim.now)
    ...         yield 1.0
    >>> _ = Process(sim, body())
    >>> sim.run()
    >>> ticks
    [0.0, 1.0, 2.0]
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[float, None, None],
        start_delay: float = 0.0,
    ) -> None:
        self._sim = sim
        self._gen = generator
        self._alive = True
        self._pending: Optional[Event] = sim.schedule(
            start_delay, self._resume
        )

    @property
    def alive(self) -> bool:
        """Whether the process still has work pending."""
        return self._alive

    def kill(self) -> None:
        """Stop the process; its generator is closed."""
        if not self._alive:
            return
        self._alive = False
        if self._pending is not None:
            self._pending.cancel()
        self._gen.close()

    def _resume(self) -> None:
        if not self._alive:
            return
        try:
            delay = next(self._gen)
        except StopIteration:
            self._alive = False
            self._pending = None
            return
        if delay is None or delay < 0:
            self.kill()
            raise SimulationError(
                f"process yielded invalid delay {delay!r}; expected >= 0"
            )
        self._pending = self._sim.schedule(float(delay), self._resume)


class PeriodicTask:
    """A callback invoked at a fixed period until stopped.

    This is the backbone of every polling loop in the hardware simulation:
    ADC sampling, firmware ticks, display refresh, battery discharge.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Seconds between invocations (must be > 0).
    callback:
        Called with no arguments each period.
    phase:
        Delay before the first invocation; defaults to one full period.
    jitter:
        Optional standard deviation of Gaussian timing jitter, in seconds.
        Real microcontroller loops are not perfectly periodic; a small jitter
        decorrelates sampling from user motion.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        phase: Optional[float] = None,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = sim.spawn_rng() if jitter > 0 else None
        # Jitter draws come from a private spawned generator that nothing
        # else reads, so they can be pre-drawn in batches:
        # ``rng.normal(size=n)`` is stream-identical to n scalar draws.
        self._jitter_pool: Optional[np.ndarray] = None
        self._jitter_index = 0
        self._running = True
        self._event: Optional[Event] = None
        first = self._period if phase is None else float(phase)
        self._event = sim.schedule(first, self._tick)

    @property
    def period(self) -> float:
        """Nominal period in seconds."""
        return self._period

    @property
    def running(self) -> bool:
        """Whether the task will fire again."""
        return self._running

    def stop(self) -> None:
        """Cancel any pending invocation and stop rescheduling."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _next_delay(self) -> float:
        if self._rng is None:
            return self._period
        if self._jitter_pool is None or self._jitter_index >= len(
            self._jitter_pool
        ):
            self._jitter_pool = self._rng.normal(
                0.0, self._jitter, size=_JITTER_BATCH
            )
            self._jitter_index = 0
        delay = self._period + float(self._jitter_pool[self._jitter_index])
        self._jitter_index += 1
        return max(delay, self._period * 0.1)

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:
            self._event = self._sim.schedule(self._next_delay(), self._tick)


class BatchTask:
    """A periodic *batch event*: one kernel event advancing many devices.

    The structure-of-arrays engine (:class:`repro.core.batch.DeviceBatch`)
    steps N devices in a single call; scheduling one kernel event per device
    would put the event loop itself back on the hot path. A ``BatchTask``
    dispatches as a single :class:`Event` per period and reports the
    per-device work it performed via :meth:`Simulator.note_batch_units`, so
    ``events_processed`` counts kernel dispatches while
    ``batch_units_processed`` counts device-ticks.

    Unlike :class:`PeriodicTask` there is no jitter option: the batch engine
    owns all per-device randomness through its spawn-key streams, and the
    batch boundary must stay on the exact tick grid for the scalar oracle to
    replay it.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Seconds between batch steps (must be > 0).
    step:
        Called with the current simulated time; returns the number of
        per-device units processed this step.
    phase:
        Delay before the first invocation; defaults to one full period.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        step: Callable[[float], int],
        phase: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = float(period)
        self._step = step
        self._running = True
        self._event: Optional[Event] = None
        first = self._period if phase is None else float(phase)
        self._event = sim.schedule(first, self._tick)

    @property
    def period(self) -> float:
        """Nominal period in seconds."""
        return self._period

    @property
    def running(self) -> bool:
        """Whether the task will fire again."""
        return self._running

    def stop(self) -> None:
        """Cancel any pending invocation and stop rescheduling."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        units = self._step(self._sim.now)
        if units:
            self._sim.note_batch_units(units)
        if self._running:
            self._event = self._sim.schedule(self._period, self._tick)


def drain(sim: Simulator, events: Iterable[tuple[float, Callable[[], None]]]) -> None:
    """Schedule a batch of ``(delay, callback)`` pairs and run to completion.

    Convenience for tests and small scripts.
    """
    for delay, callback in events:
        sim.schedule(delay, callback)
    sim.run()

"""Session recording and replay — persistence for study data.

A :class:`SessionRecorder` captures everything a study session produces
(decoded events plus the true hand trajectory, which the real authors
could not record but a simulation can) into a JSON-lines file; a
:class:`SessionReplay` loads it back for offline analysis, so experiment
notebooks never need to re-run the simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.core.device import DistScroll
from repro.core.events import InteractionEvent, decode_event

__all__ = ["SessionRecorder", "SessionReplay"]


class SessionRecorder:
    """Capture a device session to a JSONL file.

    Records two record types:

    * ``{"rec": "event", ...}`` — every interaction event;
    * ``{"rec": "pose", "t": ..., "d": ...}`` — the true device distance,
      sampled whenever it changes by more than ``pose_resolution_cm``.

    Parameters
    ----------
    device:
        The device to record.
    path:
        Output JSONL file.
    pose_resolution_cm:
        Minimum distance change between pose records.
    """

    def __init__(
        self,
        device: DistScroll,
        path: str | Path,
        pose_resolution_cm: float = 0.25,
    ) -> None:
        self._device = device
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._path.open("w")
        self._pose_resolution = float(pose_resolution_cm)
        self._last_pose: Optional[float] = None
        self.records_written = 0
        device.on_event(self._on_event)
        self._sample_pose_hook()

    def _on_event(self, event: InteractionEvent) -> None:
        self._write({"rec": "event", "data": event.to_bytes().decode()})
        self._sample_pose_hook()

    def _sample_pose_hook(self) -> None:
        distance = self._device.distance_cm
        if (
            self._last_pose is None
            or abs(distance - self._last_pose) >= self._pose_resolution
        ):
            self._last_pose = distance
            self._write({"rec": "pose", "t": self._device.now, "d": distance})

    def sample_pose(self) -> None:
        """Explicitly sample the pose (call from a periodic task)."""
        self._sample_pose_hook()

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush and close the file."""
        self._handle.close()

    def __enter__(self) -> "SessionRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class SessionReplay:
    """A loaded session: events and pose trajectory.

    Attributes
    ----------
    events:
        Decoded interaction events in order.
    poses:
        ``(time, distance_cm)`` samples of the true trajectory.
    """

    events: list[InteractionEvent]
    poses: list[tuple[float, float]]

    @classmethod
    def load(cls, path: str | Path) -> "SessionReplay":
        """Parse a recorder file.

        Raises
        ------
        ValueError
            On malformed records (fail fast: corrupt study data must not
            silently skew analysis).
        """
        events: list[InteractionEvent] = []
        poses: list[tuple[float, float]] = []
        with Path(path).open() as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"line {line_no}: bad JSON: {exc}") from exc
                kind = record.get("rec")
                if kind == "event":
                    events.append(decode_event(record["data"].encode()))
                elif kind == "pose":
                    poses.append((float(record["t"]), float(record["d"])))
                else:
                    raise ValueError(f"line {line_no}: unknown record {kind!r}")
        return cls(events=events, poses=poses)

    def events_of_kind(self, kind: str) -> Iterator[InteractionEvent]:
        """Events of one kind in order."""
        return (e for e in self.events if e.kind == kind)

    def duration(self) -> float:
        """Span of the recorded session in simulated seconds."""
        times = [t for t, _ in self.poses] + [e.time for e in self.events]
        if not times:
            return 0.0
        return max(times) - min(times)

    def total_hand_travel_cm(self) -> float:
        """Path length of the recorded trajectory."""
        travel = 0.0
        for (_, a), (_, b) in zip(self.poses, self.poses[1:]):
            travel += abs(b - a)
        return travel

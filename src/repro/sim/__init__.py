"""Discrete-event simulation substrate for the DistScroll reproduction."""

from repro.sim.kernel import (
    Event,
    PeriodicTask,
    Process,
    SimulationError,
    Simulator,
    drain,
)
from repro.sim.trace import TraceChannel, Tracer

__all__ = [
    "Event",
    "PeriodicTask",
    "Process",
    "SimulationError",
    "Simulator",
    "drain",
    "TraceChannel",
    "Tracer",
]

"""EXT-PDA — the §7 PDA add-on vs the handheld prototype."""

from __future__ import annotations

from repro.experiments import run_pda


def test_bench_pda(benchmark, report):
    result = benchmark.pedantic(
        run_pda,
        kwargs={"seed": 1, "n_trials": 8, "n_users": 3},
        rounds=1,
        iterations=1,
    )
    report(result)
    by_variant = {r[0]: r for r in result.rows}
    # The add-on preserves the technique: selection times within 2x.
    handheld = by_variant["handheld"][2]
    pda = by_variant["pda-addon"][2]
    assert 0.5 < pda / handheld < 2.0
    # The larger screen's visibility advantage.
    assert by_variant["pda-addon"][4] > by_variant["handheld"][4]

"""Tests for the reactive game pilot and the islands CLI command."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.game import AltitudeGame, GameConfig, ReactivePilot
from repro.cli import main
from repro.hardware.board import build_distscroll_board
from repro.interaction.hand import Hand
from repro.sim.kernel import Simulator


class TestReactivePilot:
    def _setup(self, seed=8):
        sim = Simulator(seed=seed)
        board = build_distscroll_board(sim)
        game = AltitudeGame(board)
        hand = Hand(
            sim,
            lambda d: board.set_pose(distance_cm=d),
            start_cm=16.0,
            rng=sim.spawn_rng(),
        )
        pilot = ReactivePilot(game, hand, np.random.default_rng(seed))
        return sim, game, pilot

    def test_pilot_plays_and_scores(self):
        sim, game, pilot = self._setup()
        sim.run_until(30.0)
        assert pilot.decisions > 50
        assert game.state.score > 0

    def test_pilot_outlives_an_unpiloted_game(self):
        """Steering must reduce collisions vs a stationary aircraft."""
        collisions = {}
        for piloted in (True, False):
            sim = Simulator(seed=4)
            board = build_distscroll_board(sim)
            game = AltitudeGame(
                board, config=GameConfig(obstacle_rate_hz=3.0)
            )
            if piloted:
                hand = Hand(
                    sim,
                    lambda d, b=board: b.set_pose(distance_cm=d),
                    start_cm=16.0,
                    rng=sim.spawn_rng(),
                )
                ReactivePilot(game, hand, np.random.default_rng(4))
            sim.run_until(40.0)
            collisions[piloted] = game.state.collisions
        assert collisions[True] <= collisions[False]

    def test_pilot_stops_on_game_over(self):
        sim, game, pilot = self._setup()
        game.state.game_over = True
        sim.run_until(2.0)
        decisions = pilot.decisions
        sim.run_until(4.0)
        assert pilot.decisions <= decisions + 1


class TestIslandsCLI:
    def test_default_table(self, capsys):
        assert main(["islands", "--entries", "6"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert out.count("\n") >= 8  # header + 6 slots + footer

    def test_placement_choice(self, capsys):
        assert main(["islands", "--entries", "6", "--placement",
                     "equal-code"]) == 0
        out = capsys.readouterr().out
        assert "equal-code" in out

    def test_island_widths_shrink_with_distance(self, capsys):
        main(["islands", "--entries", "6"])
        out = capsys.readouterr().out
        widths = [
            int(line.split()[-1])
            for line in out.splitlines()
            if line.strip() and line.strip()[0].isdigit()
        ]
        assert widths == sorted(widths, reverse=True)

"""The PDA add-on variant of the DistScroll (§5.2 / §7).

"One also could think of a DistScroll add-on for mobile devices using
the power connector e.g. of mobile phones to augment the device with the
ability of using an alternative input technique" — and §7: "we also
intend to construct a minimized version of the DistScroll as add-on for
a PDA".

This module builds that planned hardware:

* :class:`DistScrollAddon` — the minimized sensor module: a GP2D120, a
  tiny MCU sampling it through a local ADC, and a UART streaming framed
  range codes to the host at a fixed report rate.  No displays, no
  buttons, no RF — everything else lives on the PDA.
* :class:`PDAListWidget` — the PDA's list view: a 160x160 screen shows
  11 text rows (vs. the prototype's 5), which is the main ergonomic
  difference the add-on study would measure.
* :class:`PDADriver` — host-side driver: parses the frame stream
  (checksummed, resynchronizing after corrupted bytes), applies the same
  island mapping as the firmware, and drives the widget plus the PDA's
  own select/back hardware buttons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.islands import IslandMap, build_island_map
from repro.core.menu import MenuCursor, MenuEntry
from repro.hardware.adc import ADC, ADCParams
from repro.hardware.serial import UART
from repro.sensors.gp2d120 import GP2D120
from repro.sim.kernel import PeriodicTask, Simulator
from repro.signal.filters import MedianFilter

__all__ = ["DistScrollAddon", "PDAListWidget", "PDADriver", "build_pda_device"]

#: Frame: sync byte, code high, code low, checksum (sum of payload & 0xFF).
_SYNC = 0xA5
_FRAME_LEN = 4


class DistScrollAddon:
    """The minimized sensor module clipped onto the PDA connector.

    Parameters
    ----------
    sim:
        Shared simulator.
    uart:
        The wired link toward the PDA.
    report_hz:
        Frame rate (the GP2D120 refreshes at ~26 Hz; 50 Hz oversampling
        keeps host latency low, matching the handheld firmware).
    noisy:
        Noise-free sensor/ADC when ``False``.
    """

    def __init__(
        self,
        sim: Simulator,
        uart: UART,
        report_hz: float = 50.0,
        noisy: bool = True,
    ) -> None:
        self._sim = sim
        self._uart = uart
        rng = sim.spawn_rng() if noisy else None
        self.sensor = GP2D120.specimen(rng) if rng is not None else GP2D120(rng=None)
        self.adc = ADC(params=ADCParams(), rng=sim.spawn_rng() if noisy else None)
        self.distance_cm = 25.0
        self.adc.attach(0, lambda t: self.sensor.output_voltage(t, self.distance_cm))
        self.frames_sent = 0
        period = 1.0 / report_hz
        self._task = PeriodicTask(sim, period, self._report, phase=period)

    def set_distance(self, distance_cm: float) -> None:
        """The environment moves the PDA (with the add-on attached)."""
        self.distance_cm = float(distance_cm)

    def stop(self) -> None:
        """Power the add-on down."""
        self._task.stop()

    def _report(self) -> None:
        code = self.adc.sample(self._sim.now, 0)
        hi, lo = (code >> 8) & 0xFF, code & 0xFF
        checksum = (hi + lo) & 0xFF
        self._uart.write(bytes([_SYNC, hi, lo, checksum]))
        self.frames_sent += 1


class PDAListWidget:
    """The PDA's list view: 11 visible rows on a 160x160 screen."""

    VISIBLE_ROWS = 11

    def __init__(self) -> None:
        self.rows: list[str] = [""] * self.VISIBLE_ROWS
        self.title = ""
        self.redraws = 0

    def render(self, entries, highlight: int, title: str) -> None:
        """Show the window of entries around the highlight."""
        self.title = title
        first = max(
            0,
            min(highlight - self.VISIBLE_ROWS // 2, len(entries) - self.VISIBLE_ROWS),
        )
        self.rows = []
        for i in range(first, min(first + self.VISIBLE_ROWS, len(entries))):
            marker = ">" if i == highlight else " "
            self.rows.append(f"{marker}{entries[i].label}"[:26])
        while len(self.rows) < self.VISIBLE_ROWS:
            self.rows.append("")
        self.redraws += 1

    def visible_labels(self) -> list[str]:
        """Currently rendered rows."""
        return list(self.rows)


@dataclass
class PDADriver:
    """Host-side driver: frame parsing, island mapping, menu state.

    The driver mirrors the handheld firmware's selection semantics
    (islands, gaps, confirm debounce) so the add-on *feels* identical —
    only the display and buttons differ.
    """

    sim: Simulator
    uart: UART
    addon: DistScrollAddon
    menu: MenuEntry
    config: DeviceConfig = field(default_factory=DeviceConfig)
    on_activate: Optional[Callable[[MenuEntry], None]] = None

    def __post_init__(self) -> None:
        self.cursor = MenuCursor(root=self.menu, on_activate=self.on_activate)
        self.widget = PDAListWidget()
        self._filter = MedianFilter(self.config.smoothing_window)
        self._rx = bytearray()
        self.frames_ok = 0
        self.frames_bad = 0
        self._confirmed_slot: Optional[int] = None
        self._candidate_slot: Optional[int] = None
        self._candidate_since = 0.0
        self._island_map: Optional[IslandMap] = None
        self._rebuild_islands()
        self.uart.on_byte(self._on_byte)
        self._render()

    # ------------------------------------------------------------------
    # public state
    # ------------------------------------------------------------------
    @property
    def highlighted_index(self) -> int:
        """Highlighted entry index in the current level."""
        return self.cursor.highlight

    @property
    def island_map(self) -> IslandMap:
        """Mapping for the current level."""
        assert self._island_map is not None
        return self._island_map

    def aim_distance_for_index(self, index: int) -> float:
        """Hand distance whose island selects ``index`` (flat levels)."""
        n_slots = self.island_map.n_slots
        slot = n_slots - 1 - index  # towards-scrolls-down polarity
        return self.island_map.center_distance(slot)

    # ------------------------------------------------------------------
    # PDA hardware buttons
    # ------------------------------------------------------------------
    def press_select(self) -> None:
        """The PDA's action button."""
        activated = self.cursor.select()
        if activated is None:
            self._rebuild_islands()
        self._render()

    def press_back(self) -> None:
        """The PDA's back button."""
        if self.cursor.back():
            self._rebuild_islands()
        self._render()

    # ------------------------------------------------------------------
    # frame stream
    # ------------------------------------------------------------------
    def _on_byte(self, byte: int) -> None:
        self._rx.append(byte)
        while len(self._rx) >= _FRAME_LEN:
            if self._rx[0] != _SYNC:
                self._rx.pop(0)  # resynchronize
                continue
            frame = self._rx[:_FRAME_LEN]
            del self._rx[:_FRAME_LEN]
            hi, lo, checksum = frame[1], frame[2], frame[3]
            if (hi + lo) & 0xFF != checksum:
                self.frames_bad += 1
                continue
            self.frames_ok += 1
            self._handle_code((hi << 8) | lo)

    def _handle_code(self, raw_code: int) -> None:
        code = int(round(self._filter.update(raw_code)))
        slot = self.island_map.lookup(code)
        if slot is None:
            self._candidate_slot = None
            return
        now = self.sim.now
        if slot != self._confirmed_slot:
            cycle = self.addon.sensor.params.cycle_time_s
            needed = self.config.confirm_samples * cycle
            if slot != self._candidate_slot:
                self._candidate_slot = slot
                self._candidate_since = now
            if now - self._candidate_since < needed - 1e-9:
                return
            self._confirmed_slot = slot
            self._candidate_slot = None
        n_slots = self.island_map.n_slots
        index = n_slots - 1 - slot
        if self.cursor.set_highlight(index):
            self._render()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _rebuild_islands(self) -> None:
        self._confirmed_slot = None
        self._candidate_slot = None
        n_entries = max(len(self.cursor.entries), 1)
        # The PDA screen fits 11 rows; map at most that many per level
        # slice (levels beyond that would use the handheld's chunking —
        # the add-on study keeps levels <= 11).
        self._island_map = build_island_map(
            self.addon.sensor,
            self.addon.adc,
            n_entries,
            range_cm=self.config.range_cm,
            island_fill=self.config.island_fill,
        )
        self._filter.reset()

    def _render(self) -> None:
        title = ">".join(self.cursor.breadcrumb) or "(top)"
        self.widget.render(self.cursor.entries, self.cursor.highlight, title)


def build_pda_device(
    menu: MenuEntry,
    seed: int = 0,
    config: Optional[DeviceConfig] = None,
    noisy: bool = True,
) -> tuple[Simulator, DistScrollAddon, PDADriver]:
    """Assemble the PDA + add-on pair on a fresh simulator.

    Returns ``(sim, addon, driver)`` — move the device with
    ``addon.set_distance`` and read state from the driver/widget.
    """
    sim = Simulator(seed=seed)
    uart = UART(
        sim,
        framing_error_rate=0.001 if noisy else 0.0,
        rng=sim.spawn_rng() if noisy else None,
    )
    addon = DistScrollAddon(sim, uart, noisy=noisy)
    driver = PDADriver(
        sim=sim,
        uart=uart,
        addon=addon,
        menu=menu,
        config=config or DeviceConfig(),
    )
    return sim, addon, driver

"""STUDY1 — the initial user study of Section 6, quantified.

The paper's protocol: "We presented our new interaction technique to
several people, students, colleagues and people without direct technical
background.  We handed them the DistScroll device and observed their
interactions.  Even when no hints were given, the manner of operation was
promptly discovered.  Shortly after knowing the relation between menu
entry selection and distance, all users were able to nearly errorless
use the device."

The reproduction runs N simulated participants through the same arc:
an unguided discovery phase on the fictive phone menu, then blocks of
selection trials.  Reported per block: error rate (wrong activations per
trial), mean selection time, and the fraction of error-free users — the
paper's qualitative claims map to (a) discovery within tens of seconds
without hints and (b) block-2+ error rates near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser

__all__ = [
    "run_user_study",
    "user_study_seeds",
    "run_single_user",
    "aggregate_user_study",
    "UserOutcome",
    "STUDY_MENU_LABELS",
]

#: Top level of the fictive phone menu used in the study (flat for the
#: selection blocks; the hierarchical tasks live in the examples).
STUDY_MENU_LABELS = [
    "Messages",
    "Call register",
    "Contacts",
    "Settings",
    "Gallery",
    "Organiser",
    "Games",
    "Extras",
    "Services",
    "Profiles",
]


@dataclass
class UserOutcome:
    """Everything one simulated participant contributes to the tables.

    The parallel runner farms one :func:`run_single_user` call per shard
    and reassembles with :func:`aggregate_user_study`; serial execution
    walks the same two functions, so both paths are numerically identical.
    """

    discovered: bool
    time_to_discovery_s: float
    exploratory_movements: int
    block_errors: list[float]
    block_times: list[float]
    block_subs: list[float]


def user_study_seeds(seed: int, n_users: int) -> list[int]:
    """Per-participant seeds, drawn from one master stream.

    Kept as sequential draws from ``default_rng(seed)`` (rather than
    ``SeedSequence`` spawning) so the committed STUDY1 numbers are
    unchanged; each participant is fully determined by their own seed.
    """
    master = np.random.default_rng(seed)
    return [int(master.integers(2**31)) for _ in range(n_users)]


def run_single_user(
    user_seed: int,
    n_blocks: int,
    trials_per_block: int,
    config: DeviceConfig | None = None,
) -> UserOutcome:
    """One participant's discovery phase plus all selection blocks."""
    rng = np.random.default_rng(user_seed)
    device = DistScroll(
        build_menu(STUDY_MENU_LABELS), config=config, seed=user_seed
    )
    user = SimulatedUser(device=device, rng=rng)
    device.run_for(0.5)

    discovery = user.discover()

    block_errors: list[float] = []
    block_times: list[float] = []
    block_subs: list[float] = []
    for _block in range(n_blocks):
        targets = random_targets(
            len(STUDY_MENU_LABELS), trials_per_block, rng, min_separation=2
        )
        errors = 0
        times = []
        subs = []
        for target in targets:
            trial = user.select_entry(target)
            errors += trial.wrong_activations
            times.append(trial.duration_s)
            subs.append(trial.submovements)
            while device.depth > 0:
                device.click("back")
        block_errors.append(errors / trials_per_block)
        block_times.append(float(np.mean(times)))
        block_subs.append(float(np.mean(subs)))
    return UserOutcome(
        discovered=discovery.discovered,
        time_to_discovery_s=discovery.time_to_discovery_s,
        exploratory_movements=discovery.exploratory_movements,
        block_errors=block_errors,
        block_times=block_times,
        block_subs=block_subs,
    )


def aggregate_user_study(
    outcomes: list[UserOutcome], n_blocks: int
) -> ExperimentResult:
    """Fold per-participant outcomes into the STUDY1 table and notes."""
    n_users = len(outcomes)
    result = ExperimentResult(
        experiment_id="STUDY1",
        title="Initial user study: discovery and learning blocks",
        columns=(
            "block",
            "error_rate",
            "errorless_users_frac",
            "mean_trial_s",
            "mean_submovements",
        ),
    )
    block_errors = np.array([o.block_errors for o in outcomes])
    block_times = np.array([o.block_times for o in outcomes])
    block_subs = np.array([o.block_subs for o in outcomes])

    for block in range(n_blocks):
        result.add_row(
            block + 1,
            float(block_errors[:, block].mean()),
            float((block_errors[:, block] == 0).mean()),
            float(block_times[:, block].mean()),
            float(block_subs[:, block].mean()),
        )

    discovered = [o for o in outcomes if o.discovered]
    result.note(
        f"discovery without hints: {len(discovered)}/{n_users} users, "
        f"median {np.median([d.time_to_discovery_s for d in discovered]):.1f} s, "
        f"median {np.median([d.exploratory_movements for d in discovered]):.0f} "
        "exploratory movements — 'promptly discovered'"
    )
    late_error = float(block_errors[:, 1:].mean())
    result.note(
        f"mean error rate after block 1: {late_error:.3f} wrong activations/"
        "trial — 'nearly errorless' once the relation is known"
    )
    return result


def run_user_study(
    seed: int = 0,
    n_users: int = 12,
    n_blocks: int = 4,
    trials_per_block: int = 8,
    config: DeviceConfig | None = None,
) -> ExperimentResult:
    """Run the full initial-study protocol over simulated participants."""
    outcomes = [
        run_single_user(user_seed, n_blocks, trials_per_block, config)
        for user_seed in user_study_seeds(seed, n_users)
    ]
    return aggregate_user_study(outcomes, n_blocks)

"""Batched multi-device engine: one SoA step advances N devices at once.

PR 4 vectorized the signal chain across *samples* of one device
(``measure_array``/``codes_for_voltages``/``update_batch``).  This module
plays the same trick across *devices*: a :class:`DeviceBatch` holds the
firmware-visible state of N heterogeneous devices as structure-of-arrays
(held voltages, filter rings, fold-back latches, debounce candidates …)
and steps the whole fleet with a fixed set of numpy operations per tick —
sensing → ADC quantization → median filter → island lookup → cursor
update.  That is what turns "millions of simulated users" into a
single-machine workload: the per-device cost of a tick drops from one
Python event dispatch to a few array lanes.

Model scope
-----------
A batch device is the signal chain of :class:`repro.core.firmware.Firmware`
reduced to what a fleet study measures: single-level menus (``chunk_size``
semantics of 0), fast-scroll disabled, no buttons/display/RF/battery.
Everything the chain itself does — zero-order-hold sensing, surface
corruption, ADC INL + noise, fold-back latch with re-entry hysteresis,
plausibility gate, selection debounce in sensor-cycle time, reversed
scroll direction — is reproduced exactly.

Oracle discipline (PR 4's contract, across devices)
---------------------------------------------------
:class:`ScalarDeviceEngine` steps ONE device with plain scalar Python,
reusing the real scalar components wherever the stream layout allows:
``GP2D120.ideal_voltage`` (noise-free), the real :class:`ADC` instance
(``sample`` with its fault-hook plumbing), :class:`MedianFilter.update`,
and ``IslandMap.lookup``.  :class:`DeviceBatch` must be **bit-equal** to
stepping N independent ``ScalarDeviceEngine`` instances.  The property
suite in ``tests/test_batch_engine.py`` enforces this across mixed
personas/gloves/surfaces, active fault windows and observe=On.

Per-device RNG streams
----------------------
A single interleaved generator per device (what ``GP2D120`` uses) cannot
be batched across devices, because the *number* of draws one device makes
per tick is data-dependent (the corruption gate picks uniform vs normal).
Instead every device owns dedicated streams spawned from
``SeedSequence(seed, spawn_key=(BATCH_STREAM, index, purpose))`` — one
purpose per draw site (gate / noise / corruption / ADC / glitch).  Each
stream is then poolable: ``rng.normal(0, σ, size=K)`` is stream-identical
to K scalar draws (pinned by tests), so the batch engine pre-draws K
values per device and both engines consume the same numbers in the same
order.  Shard layout cannot matter: device ``i``'s streams depend only on
``(seed, i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.islands import IslandMap, Placement, build_island_map
from repro.faults import FaultKind, FaultWindow
from repro.hardware.adc import ADC, ADCParams
from repro.interaction.personas import (
    Persona,
    PersonaSpec,
    parse_spec,
    persona_for_user,
)
from repro.sensors.gp2d120 import GP2D120
from repro.sensors.surfaces import (
    AMBIENT_CONDITIONS,
    CLOTHING,
    REFERENCE_LIGHT,
    REFERENCE_SURFACE,
    AmbientLight,
    Surface,
)
from repro.signal.filters import MedianFilter
from repro.sim.streams import BATCH_STREAM

__all__ = [
    "BatchDeviceSpec",
    "DeviceBatch",
    "ScalarDeviceEngine",
    "derive_device_spec",
    "device_stream",
    "SIGNAL_FAULT_KINDS",
]

# One sub-stream per independent draw site of the device model.
_SUB_SPEC = 0  # spec derivation (config, trajectory)
_SUB_SPECIMEN = 1  # GP2D120.specimen part-to-part variation
_SUB_GATE = 2  # corruption gate (uniform draws only)
_SUB_NOISE = 3  # measurement noise (normal draws only)
_SUB_CORRUPT = 4  # corrupted-reading value (uniform draws only)
_SUB_ADC = 5  # ADC input-referred noise (normal draws only)
_SUB_GLITCH_GATE = 6  # ADC_GLITCH rate gate
_SUB_GLITCH_VALUE = 7  # ADC_GLITCH corrupted code

#: Fault kinds the batch signal chain models (the firmware's other kinds
#: target peripherals a batch device does not carry).
SIGNAL_FAULT_KINDS = frozenset(
    {
        FaultKind.ADC_GLITCH,
        FaultKind.ADC_STUCK,
        FaultKind.SENSOR_OCCLUSION,
        FaultKind.SENSOR_DROPOUT,
    }
)

#: Pre-drawn pool depth per stream; refills are amortized scalar calls.
_POOL = 64

_SMOOTHING_CHOICES = (1, 3, 5)
_RANGE_CM = (5.0, 28.0)
_ISLAND_FILL = 0.62
_TICK_HZ = 50.0
_MAX_HAND_SPEED_CM_S = 150.0

#: Surfaces a fleet device may rest against, in stable draw order.  The
#: last two are the paper's "potentially problematic" corrupting cases.
_SURFACE_NAMES = tuple(CLOTHING)
_AMBIENT_NAMES = tuple(AMBIENT_CONDITIONS)


def device_stream(
    seed: int, index: int, purpose: int
) -> np.random.Generator:
    """Device ``index``'s dedicated generator for one draw site."""
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(BATCH_STREAM, index, purpose)
    )
    return np.random.Generator(np.random.PCG64(sequence))


@dataclass(frozen=True)
class BatchDeviceSpec:
    """Everything that makes device ``index`` the device it is.

    Derivation is O(1) per device (:func:`derive_device_spec`) so any
    shard can materialize any device — the ``devicebatch`` sharder
    depends on this for ``--jobs`` invariance.
    """

    index: int
    persona_cell: str
    glove: str
    n_entries: int
    smoothing_window: int
    confirm_samples: int
    reversed_direction: bool
    surface_name: str
    ambient_name: str
    range_cm: tuple[float, float]
    island_fill: float
    #: Piecewise-linear hand trajectory: ((time_s, distance_cm), ...).
    waypoints: tuple[tuple[float, float], ...]
    fault_windows: tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        for window in self.fault_windows:
            if window.kind not in SIGNAL_FAULT_KINDS:
                raise ValueError(
                    f"fault kind {window.kind.name} has no batch-device "
                    "model; supported: "
                    + ", ".join(sorted(k.name for k in SIGNAL_FAULT_KINDS))
                )

    @property
    def surface(self) -> Surface:
        return CLOTHING.get(self.surface_name, REFERENCE_SURFACE)

    @property
    def ambient(self) -> AmbientLight:
        return AMBIENT_CONDITIONS.get(self.ambient_name, REFERENCE_LIGHT)


def _draw_fault_windows(
    rng: np.random.Generator, duration_hint_s: float
) -> tuple[FaultWindow, ...]:
    """A deterministic small fault schedule drawn from the spec stream."""
    kinds = (
        FaultKind.SENSOR_OCCLUSION,
        FaultKind.SENSOR_DROPOUT,
        FaultKind.ADC_STUCK,
        FaultKind.ADC_GLITCH,
    )
    kind = kinds[int(rng.integers(0, len(kinds)))]
    start = float(rng.uniform(0.1, max(duration_hint_s * 0.6, 0.2)))
    duration = float(rng.uniform(0.1, max(duration_hint_s * 0.3, 0.15)))
    if kind is FaultKind.ADC_GLITCH:
        return (
            FaultWindow(kind, start, duration, rate=float(rng.uniform(0.2, 0.9))),
        )
    return (FaultWindow(kind, start, duration),)


def derive_device_spec(
    seed: int,
    index: int,
    personas: Optional[PersonaSpec] = None,
    fault_every: int = 0,
    duration_hint_s: float = 2.0,
) -> BatchDeviceSpec:
    """Derive device ``index`` of a fleet, O(1) and shard-independent.

    The persona engine supplies the human heterogeneity (glove worn,
    motor tremor); the device's own spec stream supplies the hardware
    and usage heterogeneity (menu size, filter window, surface, hand
    trajectory).  ``fault_every > 0`` gives every ``fault_every``-th
    device a deterministic fault schedule drawn from the same stream.
    """
    spec = personas if personas is not None else parse_spec("full")
    persona: Persona = persona_for_user(seed, index, spec)
    glove = persona.glove_model()
    rng = device_stream(seed, index, _SUB_SPEC)

    n_entries = int(rng.integers(6, 13))
    smoothing_window = _SMOOTHING_CHOICES[int(rng.integers(0, 3))]
    confirm_samples = int(rng.integers(1, 4))
    reversed_direction = bool(rng.random() < 0.5)
    surface_name = _SURFACE_NAMES[int(rng.integers(0, len(_SURFACE_NAMES)))]
    ambient_name = _AMBIENT_NAMES[int(rng.integers(0, len(_AMBIENT_NAMES)))]

    # Piecewise-linear trajectory over the usable range.  Tremor is folded
    # into the waypoints here, at derivation time, so the per-tick path is
    # pure interpolation arithmetic (IEEE-identical scalar vs batched).
    near, far = _RANGE_CM
    low, high = near + 0.5, far - 0.5
    tremor = 0.15 * glove.tremor_factor * persona.tremor_scale
    n_moves = int(rng.integers(4, 9))
    t = 0.0
    d = float(rng.uniform(low, high))
    waypoints = [(t, d)]
    for _ in range(n_moves):
        target = float(rng.uniform(low, high))
        target += float(rng.normal(0.0, tremor))
        target = float(np.clip(target, low, high))
        speed = float(rng.uniform(8.0, 30.0))
        t += abs(target - d) / speed
        waypoints.append((t, target))
        dwell = float(rng.uniform(0.2, 0.8))
        t += dwell
        waypoints.append((t, target))
        d = target

    fault_windows: tuple[FaultWindow, ...] = ()
    if fault_every > 0 and index % fault_every == 0:
        fault_windows = _draw_fault_windows(rng, duration_hint_s)

    return BatchDeviceSpec(
        index=index,
        persona_cell=persona.cell(),
        glove=persona.glove,
        n_entries=n_entries,
        smoothing_window=smoothing_window,
        confirm_samples=confirm_samples,
        reversed_direction=reversed_direction,
        surface_name=surface_name,
        ambient_name=ambient_name,
        range_cm=_RANGE_CM,
        island_fill=_ISLAND_FILL,
        waypoints=tuple(waypoints),
        fault_windows=fault_windows,
    )


class _DeviceBuild:
    """Shared construction: everything both engines derive identically.

    Only *construction* is shared between the oracle and the batch
    engine — the per-tick stepping code is written twice on purpose, so
    the bit-equality tests compare two independent implementations.
    """

    __slots__ = (
        "spec",
        "params",
        "mapping_sensor",
        "island_map",
        "cycle_time_s",
        "corruption_probability",
        "noise_sigma",
        "floor_voltage",
        "peak_voltage",
        "saturation",
        "gain",
        "curve_a",
        "curve_b",
        "curve_c",
        "peak_distance_cm",
        "max_range_cm",
        "fast_threshold_code",
        "reentry_code",
        "max_plausible_delta",
        "confirm_window_s",
    )

    def __init__(self, spec: BatchDeviceSpec, seed: int) -> None:
        self.spec = spec
        surface = spec.surface
        ambient = spec.ambient
        specimen_rng = device_stream(seed, spec.index, _SUB_SPECIMEN)
        specimen = GP2D120.specimen(specimen_rng, surface=surface, ambient=ambient)
        params = specimen.params
        self.params = params
        # Noise-free twin used for island placement, thresholds and the
        # ideal transfer function — same role as Firmware._mapping_sensor.
        self.mapping_sensor = GP2D120(
            params=params, rng=None, surface=surface, ambient=ambient
        )
        adc = ADC(params=ADCParams(), rng=None)
        self.island_map: IslandMap = build_island_map(
            self.mapping_sensor,
            adc,
            spec.n_entries,
            range_cm=spec.range_cm,
            island_fill=spec.island_fill,
            placement=Placement.EQUAL_DISTANCE,
        )
        self.cycle_time_s = params.cycle_time_s
        self.corruption_probability = surface.corruption_probability
        self.noise_sigma = params.noise_rms * ambient.noise_factor
        self.floor_voltage = params.floor_voltage
        self.peak_voltage = params.peak_voltage
        self.saturation = params.saturation_voltage
        self.gain = surface.gain_factor
        self.curve_a = params.curve_a
        self.curve_b = params.curve_b
        self.curve_c = params.curve_c
        self.peak_distance_cm = params.peak_distance_cm
        self.max_range_cm = min(30.0, surface.max_range_cm)
        # Thresholds exactly as Firmware._rebuild_islands derives them.
        near = spec.range_cm[0]
        self.fast_threshold_code = adc.code_for_voltage(
            self.mapping_sensor.ideal_voltage(near - 0.45)
        )
        self.reentry_code = adc.code_for_voltage(
            self.mapping_sensor.ideal_voltage(near + 1.5)
        )
        dt = 1.0 / _TICK_HZ
        travel = _MAX_HAND_SPEED_CM_S * dt
        code_here = adc.code_for_voltage(self.mapping_sensor.ideal_voltage(near))
        code_there = adc.code_for_voltage(
            self.mapping_sensor.ideal_voltage(near + travel)
        )
        self.max_plausible_delta = abs(code_here - code_there) + 24
        self.confirm_window_s = spec.confirm_samples * params.cycle_time_s

    def lut_row(self) -> np.ndarray:
        """Dense code→slot table (-1 = gap), exact by construction.

        Filled from each island's inclusive ``[code_low, code_high]``
        range — ``n_slots`` slice assignments, not 1024 ``lookup`` calls.
        """
        row = np.full(1024, -1, dtype=np.int64)
        for island in self.island_map.islands:
            row[island.code_low : island.code_high + 1] = island.slot
        return row

    def padded_waypoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Waypoints plus one ``(+inf, last)`` pad.

        The pad makes the last segment's interpolation collapse to
        ``d_last + 0.0 * 0.0`` exactly, so neither engine needs an
        end-of-trajectory branch.
        """
        times = [t for t, _d in self.spec.waypoints]
        dists = [d for _t, d in self.spec.waypoints]
        times.append(float("inf"))
        dists.append(dists[-1])
        return np.asarray(times, dtype=float), np.asarray(dists, dtype=float)


class _DeviceFaults:
    """Per-device fault runtime shared by both engines.

    Mirrors the :mod:`repro.faults` hook semantics for the signal-path
    kinds: ADC_STUCK latches the first code seen in a window and wins
    over ADC_GLITCH; SENSOR_OCCLUSION beats SENSOR_DROPOUT; windows are
    half-open ``[start, end)`` and expiry triggers the firmware's
    re-acquire reset.  Each engine owns its own instance — the glitch
    streams advance identically only if the engines feed identical code
    sequences through, which is part of what the equality tests check.
    """

    def __init__(
        self, build: _DeviceBuild, seed: int, index: int
    ) -> None:
        windows = sorted(
            build.spec.fault_windows, key=lambda w: (w.start_s, w.end_s)
        )
        self._windows = windows
        self._pending = sorted(windows, key=lambda w: w.end_s)
        self._min_start = min(w.start_s for w in windows)
        self._stuck: dict[int, int] = {}
        self._occlusion_volts = {
            id(w): build.mapping_sensor.ideal_voltage(float(w.magnitude))
            for w in windows
            if w.kind is FaultKind.SENSOR_OCCLUSION
        }
        self._floor = build.floor_voltage
        self._has_adc_kinds = any(
            w.kind in (FaultKind.ADC_STUCK, FaultKind.ADC_GLITCH)
            for w in windows
        )
        has_glitch = any(w.kind is FaultKind.ADC_GLITCH for w in windows)
        self._glitch_gate = (
            device_stream(seed, index, _SUB_GLITCH_GATE) if has_glitch else None
        )
        self._glitch_value = (
            device_stream(seed, index, _SUB_GLITCH_VALUE) if has_glitch else None
        )

    @property
    def finished(self) -> bool:
        """All windows expired and their recovery reset delivered."""
        return not self._pending

    def service(self, now: float) -> bool:
        """Pop expired windows; True if the signal chain must re-acquire."""
        reset = False
        while self._pending and self._pending[0].end_s <= now:
            self._pending.pop(0)
            reset = True
        return reset

    def poll(self, now: float) -> tuple[bool, Optional[float], bool]:
        """One combined per-tick query: ``(reset, override, adc_live)``.

        Semantically ``service`` + ``sensor_override`` + "any ADC-kind
        window active", with a fast path for ticks outside every window
        — the batch engine's per-faulted-device cost between windows is
        this one call.
        """
        if not self._pending or now < self._min_start:
            return (False, None, False)
        reset = self.service(now)
        override = self.sensor_override(now)
        adc_live = self._has_adc_kinds and any(
            window.kind in (FaultKind.ADC_STUCK, FaultKind.ADC_GLITCH)
            and window.active(now)
            for window in self._windows
        )
        return (reset, override, adc_live)

    def _first_active(self, kind: FaultKind, now: float) -> Optional[FaultWindow]:
        for window in self._windows:
            if window.kind is kind and window.active(now):
                return window
        return None

    def sensor_override(self, now: float) -> Optional[float]:
        window = self._first_active(FaultKind.SENSOR_OCCLUSION, now)
        if window is not None:
            return self._occlusion_volts[id(window)]
        window = self._first_active(FaultKind.SENSOR_DROPOUT, now)
        if window is not None:
            return self._floor
        return None

    def adc_hook(self, now: float, code: int) -> int:
        window = self._first_active(FaultKind.ADC_STUCK, now)
        if window is not None:
            return self._stuck.setdefault(id(window), code)
        window = self._first_active(FaultKind.ADC_GLITCH, now)
        if window is not None:
            assert self._glitch_gate is not None
            assert self._glitch_value is not None
            if self._glitch_gate.random() < window.rate:
                return int(self._glitch_value.integers(0, 1024))
        return code


class ScalarDeviceEngine:
    """One device, stepped with plain scalar Python: the oracle.

    Reuses the real scalar components wherever the dedicated-stream
    layout allows (``ideal_voltage``, a real :class:`ADC` with its
    fault-hook plumbing, :class:`MedianFilter`, ``IslandMap.lookup``).
    ``None``-style firmware state is encoded with ``-1`` sentinels so a
    state snapshot compares directly against the batch arrays.
    """

    def __init__(self, spec: BatchDeviceSpec, seed: int) -> None:
        build = _DeviceBuild(spec, seed)
        self.build = build
        self.spec = spec
        self._gate = device_stream(seed, spec.index, _SUB_GATE)
        self._noise = device_stream(seed, spec.index, _SUB_NOISE)
        self._corrupt = device_stream(seed, spec.index, _SUB_CORRUPT)
        self._faults = (
            _DeviceFaults(build, seed, spec.index) if spec.fault_windows else None
        )
        self._adc = ADC(
            params=ADCParams(), rng=device_stream(seed, spec.index, _SUB_ADC)
        )
        self._volts = 0.0
        self._adc.attach(0, lambda _t: self._volts)
        if self._faults is not None:
            faults = self._faults
            self._adc.fault_hook = (
                lambda t, _channel, code: faults.adc_hook(t, code)
            )
        self._filter = MedianFilter(spec.smoothing_window)
        self._wp_t, self._wp_d = build.padded_waypoints()
        self._segment = 0
        self._held: Optional[float] = None
        self._last_cycle = -1
        # firmware state (sentinel -1 == the firmware's None)
        self.last_valid = -1
        self.streak = 0
        self.latched = False
        self.confirmed = -1
        self.candidate = -1
        self.candidate_since = 0.0
        self.current_slot = -2  # never looked up yet
        self.raw_code = 0
        self.filtered_code = 0
        self.highlight = 0
        # counters (match DeviceBatch's per-device counters)
        self.fresh = 0
        self.corrupted = 0
        self.latches = 0
        self.rejections = 0
        self.confirmations = 0
        self.moves = 0

    # -- one firmware tick ------------------------------------------------
    def step(self, now: float) -> None:
        build = self.build
        if self._faults is not None and self._faults.service(now):
            self._filter.reset()
            self.last_valid = -1
            self.latched = False
            self.streak = 0
        # trajectory
        while now >= self._wp_t[self._segment + 1]:
            self._segment += 1
        t0 = self._wp_t[self._segment]
        t1 = self._wp_t[self._segment + 1]
        d0 = self._wp_d[self._segment]
        d1 = self._wp_d[self._segment + 1]
        distance = d0 + (d1 - d0) * ((now - t0) / (t1 - t0))
        # zero-order-hold sensing (GP2D120.output_voltage semantics with
        # the dedicated gate/noise/corruption streams)
        cycle = int(now / build.cycle_time_s)
        if cycle != self._last_cycle or self._held is None:
            self._last_cycle = cycle
            self.fresh += 1
            ideal = build.mapping_sensor.ideal_voltage(float(distance))
            if self._gate.random() < build.corruption_probability:
                self.corrupted += 1
                self._held = float(
                    self._corrupt.uniform(build.floor_voltage, build.peak_voltage)
                )
            else:
                noisy = ideal + self._noise.normal(0.0, build.noise_sigma)
                self._held = float(np.clip(noisy, 0.0, build.saturation))
        volts = self._held
        if self._faults is not None:
            override = self._faults.sensor_override(now)
            if override is not None:
                volts = float(np.clip(override, 0.0, build.saturation))
        # ADC conversion through the real component (hook + clip included)
        self._volts = volts
        self.raw_code = self._adc.sample(now, 0)
        self.filtered_code = int(round(self._filter.update(self.raw_code)))
        self._process_code(self.filtered_code, now)

    def _process_code(self, code: int, now: float) -> None:
        build = self.build
        if code > build.fast_threshold_code:
            if not self.latched:
                self.latches += 1
            self.latched = True
            return
        if self.latched:
            if code > build.reentry_code:
                return
            self.latched = False
            self.last_valid = -1
        if (
            self.last_valid != -1
            and abs(code - self.last_valid) > build.max_plausible_delta
        ):
            self.streak += 1
            self.rejections += 1
            if self.streak < 3:
                return
        self.streak = 0
        self.last_valid = code
        slot = build.island_map.lookup(code)
        self.current_slot = -1 if slot is None else slot
        if slot is None:
            self.candidate = -1
            return
        if slot != self.confirmed:
            needed = self.spec.confirm_samples * build.cycle_time_s
            if slot != self.candidate:
                self.candidate = slot
                self.candidate_since = now
            if now - self.candidate_since < needed - 1e-9:
                return
            self.confirmed = slot
            self.candidate = -1
            self.confirmations += 1
        n_slots = build.island_map.n_slots
        local = n_slots - 1 - slot if self.spec.reversed_direction else slot
        index = min(local, self.spec.n_entries - 1)
        if index != self.highlight:
            self.highlight = index
            self.moves += 1

    def state(self) -> tuple:
        """Comparable firmware-state snapshot (same encoding as the batch)."""
        held = self._held if self._held is not None else 0.0
        return (
            held,
            self.raw_code,
            self.filtered_code,
            self.last_valid,
            self.streak,
            self.latched,
            self.confirmed,
            self.candidate,
            self.candidate_since,
            self.current_slot,
            self.highlight,
        )

    def counters(self) -> tuple:
        return (
            self.fresh,
            self.corrupted,
            self.latches,
            self.rejections,
            self.confirmations,
            self.moves,
        )


class DeviceBatch:
    """N devices stepped together, structure-of-arrays.

    ``step(now)`` advances every device by one firmware tick and returns
    the number of device-ticks performed.  Observability is pre-
    aggregated: one counter ``inc(n)`` per metric per batch tick plus a
    sampled ``batch.tick`` span, instead of per-device instruments — the
    whole point being that observe=On stays production-cheap at fleet
    scale.  Obs never touches the RNG streams or device state, so
    bit-equality holds with a recorder active.
    """

    def __init__(
        self,
        specs: Sequence[BatchDeviceSpec],
        seed: int,
        span_sample_every: int = 64,
    ) -> None:
        if not specs:
            raise ValueError("DeviceBatch needs at least one device spec")
        self.specs = list(specs)
        self.seed = seed
        n = len(self.specs)
        self.n_devices = n
        builds = [_DeviceBuild(spec, seed) for spec in self.specs]
        self._builds = builds

        def as_f(pick: Callable[[_DeviceBuild], float]) -> np.ndarray:
            return np.array([pick(b) for b in builds], dtype=float)

        def as_i(pick: Callable[[_DeviceBuild], int]) -> np.ndarray:
            return np.array([pick(b) for b in builds], dtype=np.int64)

        # static per-device parameters
        self._cycle_time = as_f(lambda b: b.cycle_time_s)
        self._corruption_p = as_f(lambda b: b.corruption_probability)
        self._noise_sigma = as_f(lambda b: b.noise_sigma)
        self._floor_v = as_f(lambda b: b.floor_voltage)
        self._peak_v = as_f(lambda b: b.peak_voltage)
        self._saturation = as_f(lambda b: b.saturation)
        self._gain = as_f(lambda b: b.gain)
        self._curve_a = as_f(lambda b: b.curve_a)
        self._curve_b = as_f(lambda b: b.curve_b)
        self._curve_c = as_f(lambda b: b.curve_c)
        self._peak_d = as_f(lambda b: b.peak_distance_cm)
        self._max_range = as_f(lambda b: b.max_range_cm)
        self._fast_threshold = as_i(lambda b: b.fast_threshold_code)
        self._reentry = as_i(lambda b: b.reentry_code)
        self._max_delta = as_i(lambda b: b.max_plausible_delta)
        self._confirm_needed = as_f(lambda b: b.confirm_window_s)
        self._n_slots = as_i(lambda b: b.island_map.n_slots)
        self._n_entries = as_i(lambda b: b.spec.n_entries)
        self._window = as_i(lambda b: b.spec.smoothing_window)
        self._reversed = np.array(
            [b.spec.reversed_direction for b in builds], dtype=bool
        )
        self._lut = np.stack([b.lut_row() for b in builds])

        # trajectories, padded to a common width
        width = max(len(b.spec.waypoints) for b in builds) + 1
        self._wp_t = np.full((n, width), np.inf)
        self._wp_d = np.empty((n, width))
        for row, build in enumerate(builds):
            times, dists = build.padded_waypoints()
            self._wp_t[row, : times.size] = times
            self._wp_d[row, : dists.size] = dists
            self._wp_d[row, dists.size :] = dists[-1]
        adc_params = ADCParams()
        self._v_ref = adc_params.v_ref
        self._code_span = float(adc_params.max_code + 1)
        self._max_code = adc_params.max_code
        self._inl_lsb = adc_params.inl_lsb
        self._adc_noise_rms = adc_params.noise_lsb_rms
        self._ring_cols = np.arange(max(_SMOOTHING_CHOICES))[None, :]
        self._rows = np.arange(n)
        self._span_sample_every = max(int(span_sample_every), 0)
        self.reset()

    def reset(self) -> None:
        """Restore pristine post-construction state (streams included).

        A reset batch replays the exact same run: the RNG streams, pools
        and fault runtimes are rebuilt from the seed.  Benchmarks use
        this to time steady-state stepping without rebuilding the fleet.
        """
        n = self.n_devices
        seed = self.seed
        builds = self._builds
        self._segment = np.zeros(n, dtype=np.int64)

        # dedicated per-device streams + pre-drawn pools
        self._gate_rngs = [
            device_stream(seed, s.index, _SUB_GATE) for s in self.specs
        ]
        self._noise_rngs = [
            device_stream(seed, s.index, _SUB_NOISE) for s in self.specs
        ]
        self._corrupt_rngs = [
            device_stream(seed, s.index, _SUB_CORRUPT) for s in self.specs
        ]
        self._adc_rngs = [
            device_stream(seed, s.index, _SUB_ADC) for s in self.specs
        ]
        self._gate_pool = np.empty((n, _POOL))
        self._gate_idx = np.full(n, _POOL, dtype=np.int64)
        self._noise_pool = np.empty((n, _POOL))
        self._noise_idx = np.full(n, _POOL, dtype=np.int64)
        self._adc_pool = np.empty((n, _POOL))
        self._adc_cursor = _POOL  # lockstep: one draw per device per tick

        # fault runtimes (scalar path; most fleets have few faulted devices)
        self._faults: list[Optional[_DeviceFaults]] = [
            _DeviceFaults(b, seed, b.spec.index) if b.spec.fault_windows else None
            for b in builds
        ]
        self._fault_rows = [
            row for row, f in enumerate(self._faults) if f is not None
        ]

        # sensing state
        self._held = np.zeros(n)
        self._has_held = np.zeros(n, dtype=bool)
        self._all_held = False
        self._last_cycle = np.full(n, -1, dtype=np.int64)

        # median-filter rings (count-aware, +inf-masked sort)
        self._ring = np.zeros((n, max(_SMOOTHING_CHOICES)))
        self._ring_pos = np.zeros(n, dtype=np.int64)
        self._ring_count = np.zeros(n, dtype=np.int64)

        # firmware state, -1 sentinels matching the oracle
        self.raw_code = np.zeros(n, dtype=np.int64)
        self.filtered_code = np.zeros(n, dtype=np.int64)
        self.last_valid = np.full(n, -1, dtype=np.int64)
        self.streak = np.zeros(n, dtype=np.int64)
        self.latched = np.zeros(n, dtype=bool)
        self.confirmed = np.full(n, -1, dtype=np.int64)
        self.candidate = np.full(n, -1, dtype=np.int64)
        self.candidate_since = np.zeros(n)
        self.current_slot = np.full(n, -2, dtype=np.int64)
        self.highlight = np.zeros(n, dtype=np.int64)

        # per-device counters
        self.fresh = np.zeros(n, dtype=np.int64)
        self.corrupted = np.zeros(n, dtype=np.int64)
        self.latches = np.zeros(n, dtype=np.int64)
        self.rejections = np.zeros(n, dtype=np.int64)
        self.confirmations = np.zeros(n, dtype=np.int64)
        self.moves = np.zeros(n, dtype=np.int64)

        self.ticks = 0
        self._obs_plan: Optional[tuple] = None

    # -- pooled draws -----------------------------------------------------
    def _pool_take(
        self,
        rows: np.ndarray,
        pool: np.ndarray,
        cursor: np.ndarray,
        refill: Callable[[int], np.ndarray],
    ) -> np.ndarray:
        exhausted = rows[cursor[rows] >= _POOL]
        for row in exhausted:
            pool[row] = refill(int(row))
        if exhausted.size:
            cursor[exhausted] = 0
        position = cursor[rows]
        values = pool[rows, position]
        cursor[rows] = position + 1
        return values

    # -- one batched firmware tick ---------------------------------------
    def step(self, now: float) -> int:
        """Advance every device by one tick; returns device-ticks done."""
        n = self.n_devices
        rows = self._rows

        # fault poll (scalar, faulted devices only; finished rows pruned)
        overrides: list[tuple[int, float]] = []
        adc_fault_rows: list[int] = []
        if self._fault_rows:
            keep = []
            for row in self._fault_rows:
                faults = self._faults[row]
                assert faults is not None
                reset, override, adc_live = faults.poll(now)
                if reset:
                    self._ring_count[row] = 0
                    self._ring_pos[row] = 0
                    self.last_valid[row] = -1
                    self.latched[row] = False
                    self.streak[row] = 0
                if override is not None:
                    overrides.append((row, override))
                if adc_live:
                    adc_fault_rows.append(row)
                if not faults.finished:
                    keep.append(row)
            self._fault_rows = keep

        # zero-order-hold: refresh only devices entering a new sensor cycle
        cycle = (now / self._cycle_time).astype(np.int64)
        fresh = cycle != self._last_cycle
        if not self._all_held:
            fresh |= ~self._has_held
        self._last_cycle = cycle
        fresh_rows = np.flatnonzero(fresh)
        n_corrupt = 0
        if fresh_rows.size:
            if not self._all_held:
                self._has_held[fresh_rows] = True
                self._all_held = bool(self._has_held.all())
            self.fresh[fresh_rows] += 1
            # trajectory interpolation, lazily caught up per fresh row
            segment = self._segment
            while True:
                upcoming = self._wp_t[fresh_rows, segment[fresh_rows] + 1]
                advance = now >= upcoming
                if not advance.any():
                    break
                segment[fresh_rows[advance]] += 1
            seg = segment[fresh_rows]
            t0 = self._wp_t[fresh_rows, seg]
            t1 = self._wp_t[fresh_rows, seg + 1]
            d0 = self._wp_d[fresh_rows, seg]
            d1 = self._wp_d[fresh_rows, seg + 1]
            distance = d0 + (d1 - d0) * ((now - t0) / (t1 - t0))
            ideal = self._ideal_voltage(fresh_rows, distance)
            gate = self._pool_take(
                fresh_rows,
                self._gate_pool,
                self._gate_idx,
                lambda row: self._gate_rngs[row].random(_POOL),
            )
            corrupt = gate < self._corruption_p[fresh_rows]
            if corrupt.any():
                corrupt_rows = fresh_rows[corrupt]
                clean_rows = fresh_rows[~corrupt]
                ideal = ideal[~corrupt]
                n_corrupt = int(corrupt_rows.size)
                self.corrupted[corrupt_rows] += 1
                for row in corrupt_rows:
                    self._held[row] = float(
                        self._corrupt_rngs[row].uniform(
                            self._floor_v[row], self._peak_v[row]
                        )
                    )
            else:
                clean_rows = fresh_rows
            if clean_rows.size:
                noise = self._pool_take(
                    clean_rows,
                    self._noise_pool,
                    self._noise_idx,
                    lambda row: self._noise_rngs[row].normal(
                        0.0, self._noise_sigma[row], _POOL
                    ),
                )
                noisy = ideal + noise
                self._held[clean_rows] = np.minimum(
                    np.maximum(noisy, 0.0), self._saturation[clean_rows]
                )

        volts = self._held
        if overrides:
            volts = self._held.copy()
            for row, override in overrides:
                saturation = float(self._saturation[row])
                volts[row] = min(max(override, 0.0), saturation)

        # ADC quantization (vectorized _quantize, lockstep noise draws)
        if self._adc_cursor >= _POOL:
            for row in range(n):
                self._adc_pool[row] = self._adc_rngs[row].normal(
                    0.0, self._adc_noise_rms, _POOL
                )
            self._adc_cursor = 0
        adc_noise = self._adc_pool[:, self._adc_cursor]
        self._adc_cursor += 1
        fraction = volts / self._v_ref
        code = fraction * self._code_span
        code = code + self._inl_lsb * np.sin(np.pi * np.clip(fraction, 0.0, 1.0))
        code = code + adc_noise
        codes = np.clip(np.round(code), 0, self._max_code).astype(np.int64)
        for row in adc_fault_rows:
            faults = self._faults[row]
            assert faults is not None
            hooked = faults.adc_hook(now, int(codes[row]))
            codes[row] = min(max(hooked, 0), self._max_code)
        self.raw_code = codes

        # median filter (count-aware ring, matches MedianFilter.update)
        self._ring[rows, self._ring_pos] = codes
        self._ring_pos = (self._ring_pos + 1) % self._window
        self._ring_count = np.minimum(self._ring_count + 1, self._window)
        work = np.where(
            self._ring_cols < self._ring_count[:, None], self._ring, np.inf
        )
        work.sort(axis=1)
        middle = self._ring_count // 2
        odd = (self._ring_count & 1) == 1
        median = np.where(
            odd,
            work[rows, middle],
            0.5 * (work[rows, middle - 1] + work[rows, middle]),
        )
        filtered = np.round(median).astype(np.int64)
        self.filtered_code = filtered

        # fold-back latch + re-entry hysteresis (Firmware._process_code)
        above = filtered > self._fast_threshold
        new_latches = above & ~self.latched
        self.latches += new_latches
        self.latched |= above
        below = ~above & self.latched
        held_latched = below & (filtered > self._reentry)
        unlatch = below & ~held_latched
        self.latched[unlatch] = False
        self.last_valid[unlatch] = -1
        active = ~above & ~held_latched

        # plausibility gate
        suspicious = (
            active
            & (self.last_valid != -1)
            & (np.abs(filtered - self.last_valid) > self._max_delta)
        )
        self.streak[suspicious] += 1
        self.rejections += suspicious
        rejected = suspicious & (self.streak < 3)
        accepted = active & ~rejected
        self.streak[accepted] = 0
        self.last_valid[accepted] = filtered[accepted]

        # island lookup + selection debounce (Firmware._apply_slot_lookup)
        slot = self._lut[rows, filtered]
        self.current_slot[accepted] = slot[accepted]
        gap = slot < 0
        self.candidate[accepted & gap] = -1
        acting = accepted & ~gap
        same_as_confirmed = acting & (slot == self.confirmed)
        changed = acting & ~same_as_confirmed
        fresh_candidate = changed & (slot != self.candidate)
        self.candidate[fresh_candidate] = slot[fresh_candidate]
        self.candidate_since[fresh_candidate] = now
        confirm = changed & ~(
            (now - self.candidate_since) < (self._confirm_needed - 1e-9)
        )
        self.confirmed[confirm] = slot[confirm]
        self.candidate[confirm] = -1
        self.confirmations += confirm

        moving = same_as_confirmed | confirm
        local = np.where(self._reversed, self._n_slots - 1 - slot, slot)
        index = np.minimum(local, self._n_entries - 1)
        moved = moving & (index != self.highlight)
        self.highlight[moved] = index[moved]
        self.moves += moved

        self.ticks += 1
        self._record_obs(now, fresh_rows.size, n_corrupt, new_latches,
                         suspicious, confirm, moved)
        return n

    def _ideal_voltage(
        self, device_rows: np.ndarray, distance: np.ndarray
    ) -> np.ndarray:
        """Vectorized per-device GP2D120.ideal_voltage for a row subset.

        The fold-back branch stays per-element through the real scalar
        method: numpy's SIMD ``**`` differs from libm by 1 ulp (PR 4).
        """
        floor_v = self._floor_v[device_rows]
        peak_d = self._peak_d[device_rows]
        max_range = self._max_range[device_rows]
        out = floor_v.copy()
        positive = distance > 0.0
        fold = positive & (distance < peak_d)
        ranged = positive & ~fold & (distance <= max_range)
        if not ranged.all():
            ranged_rows = device_rows[ranged]
            d = distance[ranged]
            out[ranged] = (
                self._curve_a[ranged_rows] / (d + self._curve_b[ranged_rows])
                + self._curve_c[ranged_rows]
            )
            out *= self._gain[device_rows]
            out = np.clip(out, 0.0, self._saturation[device_rows])
            for position in np.flatnonzero(fold):
                row = device_rows[position]
                out[position] = self._builds[row].mapping_sensor.ideal_voltage(
                    float(distance[position])
                )
            return out
        # common case: every reading on the usable branch
        out = (
            self._curve_a[device_rows] / (distance + self._curve_b[device_rows])
            + self._curve_c[device_rows]
        )
        out *= self._gain[device_rows]
        return np.clip(out, 0.0, self._saturation[device_rows])

    # -- observability ----------------------------------------------------
    def _record_obs(
        self,
        now: float,
        n_fresh: int,
        n_corrupt: int,
        new_latches: np.ndarray,
        suspicious: np.ndarray,
        confirm: np.ndarray,
        moved: np.ndarray,
    ) -> None:
        plan = self._obs_plan
        if plan is None:
            from repro.obs.recorder import active_recorder

            recorder = active_recorder()
            if not recorder.enabled or recorder.metrics is None:
                self._obs_plan = (None,)
                return
            metrics = recorder.metrics
            plan = (
                recorder,
                metrics.counter("batch.ticks"),
                metrics.counter("batch.device_ticks"),
                metrics.counter("batch.measurements.fresh"),
                metrics.counter("batch.measurements.corrupted"),
                metrics.counter("batch.foldback.latches"),
                metrics.counter("batch.plausibility.rejections"),
                metrics.counter("batch.debounce.confirmations"),
                metrics.counter("batch.highlight.moves"),
            )
            self._obs_plan = plan
        if plan[0] is None:
            return
        (recorder, ticks, device_ticks, fresh, corrupted, latches,
         rejections, confirmations, moves) = plan
        ticks.inc()
        device_ticks.inc(self.n_devices)
        if n_fresh:
            fresh.inc(n_fresh)
        if n_corrupt:
            corrupted.inc(n_corrupt)
        count = int(new_latches.sum())
        if count:
            latches.inc(count)
        count = int(suspicious.sum())
        if count:
            rejections.inc(count)
        count = int(confirm.sum())
        if count:
            confirmations.inc(count)
        count = int(moved.sum())
        if count:
            moves.inc(count)
        every = self._span_sample_every
        if every and (self.ticks - 1) % every == 0:
            recorder.emit_span(
                "batch.tick", now, now,
                {"devices": self.n_devices, "tick": self.ticks},
            )

    # -- results ----------------------------------------------------------
    def state(self, row: int) -> tuple:
        """Device ``row``'s snapshot, same encoding as the oracle's."""
        return (
            float(self._held[row]),
            int(self.raw_code[row]),
            int(self.filtered_code[row]),
            int(self.last_valid[row]),
            int(self.streak[row]),
            bool(self.latched[row]),
            int(self.confirmed[row]),
            int(self.candidate[row]),
            float(self.candidate_since[row]),
            int(self.current_slot[row]),
            int(self.highlight[row]),
        )

    def counters(self, row: int) -> tuple:
        return (
            int(self.fresh[row]),
            int(self.corrupted[row]),
            int(self.latches[row]),
            int(self.rejections[row]),
            int(self.confirmations[row]),
            int(self.moves[row]),
        )

    def result_rows(self) -> list[tuple]:
        """One plain-scalar row per device (fleet experiment payload)."""
        rows = []
        for position, spec in enumerate(self.specs):
            rows.append(
                (
                    spec.index,
                    spec.persona_cell,
                    spec.glove,
                    spec.surface_name,
                    spec.ambient_name,
                    spec.n_entries,
                    spec.smoothing_window,
                    spec.confirm_samples,
                    "reversed" if spec.reversed_direction else "natural",
                    len(spec.fault_windows),
                    int(self.fresh[position]),
                    int(self.corrupted[position]),
                    int(self.latches[position]),
                    int(self.rejections[position]),
                    int(self.confirmations[position]),
                    int(self.moves[position]),
                    int(self.filtered_code[position]),
                    int(self.highlight[position]),
                )
            )
        return rows

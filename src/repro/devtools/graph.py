"""Phase 1 of the v2 lint engine: the project-wide symbol/import graph.

The original reprolint rules were single-file AST visitors; the flow
rule family (REP006–REP009) needs to answer cross-module questions —
"which constant does this ``spawn_key`` element resolve to, and where
is it defined?", "does any module re-use this stream domain?", "is the
vectorized half of this scalar API actually exported?".  This module
builds the substrate those rules share:

* :class:`FileFacts` — everything the graph needs to know about one
  file, extracted by a **pure function of the source text** (so the
  incremental cache can key it on the source digest alone): imports,
  top-level symbols with literal constant values, ``__all__`` exports,
  and every ``SeedSequence(..., spawn_key=(...))`` call site.
* :class:`ProjectGraph` — the linked view: dotted-import resolution by
  module-path suffix matching (works for ``src/repro`` and for fixture
  trees alike), assignment-chain constant resolution across modules,
  import closures, and content digests of those closures for the
  incremental cache.

Nothing here imports the linted code; everything is derived from the
AST, so the linter can analyse trees that would not even import.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "FileFacts",
    "ImportRecord",
    "ProjectGraph",
    "ResolvedConstant",
    "ResolvedSpawnSite",
    "SpawnSite",
    "SymbolInfo",
    "extract_facts",
    "resolve_spawn_sites",
    "stream_registry",
]

#: Literal values the symbol table records (everything else is opaque).
ConstValue = Union[int, float, str, bool, None]

#: Maximum import-chain hops followed when resolving a name.
_MAX_RESOLVE_DEPTH = 6


@dataclass(frozen=True)
class ImportRecord:
    """One imported binding at module top level.

    ``module`` is the dotted module as written; ``name`` is the imported
    symbol for ``from``-imports (``None`` for plain ``import``);
    ``asname`` is the local binding the rest of the file sees.
    """

    module: str
    name: Optional[str]
    asname: str
    lineno: int

    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "name": self.name,
            "asname": self.asname,
            "lineno": self.lineno,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ImportRecord":
        return cls(
            module=str(data["module"]),
            name=None if data["name"] is None else str(data["name"]),
            asname=str(data["asname"]),
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SymbolInfo:
    """One top-level (or class-member) symbol of a module.

    ``kind`` is ``"class"``, ``"function"``, ``"const"`` (a literal
    assignment whose value the table records) or ``"assign"`` (a
    non-literal assignment).  Class methods are recorded under dotted
    names (``"GP2D120.measure_array"``).
    """

    name: str
    kind: str
    lineno: int
    value: ConstValue = None

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "lineno": self.lineno,
            "value": self.value,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SymbolInfo":
        value = data["value"]
        assert value is None or isinstance(value, (int, float, str, bool))
        return cls(
            name=str(data["name"]),
            kind=str(data["kind"]),
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            value=value,
        )


@dataclass(frozen=True)
class SpawnSite:
    """One ``SeedSequence(..., spawn_key=(...))`` call site.

    ``domain_kind`` describes the first element of the spawn-key tuple:
    ``"literal"`` (an inline integer), ``"name"`` (an identifier or
    dotted attribute, recorded in ``domain_name``), or ``"opaque"``
    (anything else, including non-tuple spawn keys).
    """

    line: int
    col: int
    snippet: str
    domain_kind: str
    domain_value: Optional[int] = None
    domain_name: Optional[str] = None

    def to_json(self) -> dict[str, object]:
        return {
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
            "domain_kind": self.domain_kind,
            "domain_value": self.domain_value,
            "domain_name": self.domain_name,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SpawnSite":
        value = data["domain_value"]
        name = data["domain_name"]
        return cls(
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            snippet=str(data["snippet"]),
            domain_kind=str(data["domain_kind"]),
            domain_value=None if value is None else int(value),  # type: ignore[arg-type]
            domain_name=None if name is None else str(name),
        )


@dataclass(frozen=True)
class FileFacts:
    """Phase-1 knowledge about one file — a pure function of its text."""

    path: str
    digest: str
    parts: tuple[str, ...]
    imports: tuple[ImportRecord, ...]
    symbols: Mapping[str, SymbolInfo]
    exports: Optional[tuple[str, ...]]
    spawn_sites: tuple[SpawnSite, ...]

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "digest": self.digest,
            "parts": list(self.parts),
            "imports": [record.to_json() for record in self.imports],
            "symbols": [
                info.to_json()
                for _name, info in sorted(self.symbols.items())
            ],
            "exports": None if self.exports is None else list(self.exports),
            "spawn_sites": [site.to_json() for site in self.spawn_sites],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FileFacts":
        imports = data["imports"]
        symbols = data["symbols"]
        exports = data["exports"]
        spawn_sites = data["spawn_sites"]
        assert isinstance(imports, list)
        assert isinstance(symbols, list)
        assert isinstance(spawn_sites, list)
        infos = [SymbolInfo.from_json(raw) for raw in symbols]
        return cls(
            path=str(data["path"]),
            digest=str(data["digest"]),
            parts=tuple(str(p) for p in data["parts"]),  # type: ignore[union-attr]
            imports=tuple(ImportRecord.from_json(raw) for raw in imports),
            symbols={info.name: info for info in infos},
            exports=(
                None
                if exports is None
                else tuple(str(e) for e in exports)  # type: ignore[union-attr]
            ),
            spawn_sites=tuple(SpawnSite.from_json(raw) for raw in spawn_sites),
        )


def source_digest(path: str, source: str) -> str:
    """Content digest keying the facts cache (path + text)."""
    hasher = hashlib.sha256()
    hasher.update(path.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


def _module_parts(path: str) -> tuple[str, ...]:
    """``sim/streams.py`` -> ``("sim", "streams")``; packages drop
    ``__init__``."""
    pieces = path.split("/")
    last = pieces[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        pieces = pieces[:-1]
    else:
        pieces = pieces[:-1] + [last]
    return tuple(pieces)


def _literal_value(node: ast.AST) -> tuple[bool, ConstValue]:
    """``(True, value)`` when ``node`` is a recordable literal."""
    if isinstance(node, ast.Constant) and (
        node.value is None or isinstance(node.value, (int, float, str, bool))
    ):
        return True, node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return True, -node.operand.value
    return False, None


def _string_list(node: ast.AST) -> Optional[tuple[str, ...]]:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names: list[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return tuple(names)


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SpawnCollector(ast.NodeVisitor):
    """Collects ``SeedSequence(..., spawn_key=...)`` call sites."""

    def __init__(self, lines: Sequence[str]) -> None:
        self.sites: list[SpawnSite] = []
        self._lines = lines

    def _snippet(self, lineno: int) -> str:
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1].strip()
        return ""

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        callee_name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr
            if isinstance(callee, ast.Attribute)
            else None
        )
        if callee_name == "SeedSequence":
            for keyword in node.keywords:
                if keyword.arg == "spawn_key":
                    self.sites.append(self._site(node, keyword.value))
        self.generic_visit(node)

    def _site(self, call: ast.Call, key: ast.expr) -> SpawnSite:
        line, col = call.lineno, call.col_offset
        snippet = self._snippet(line)
        if not isinstance(key, ast.Tuple) or not key.elts:
            return SpawnSite(line, col, snippet, "opaque")
        head = key.elts[0]
        is_literal, value = _literal_value(head)
        if is_literal and isinstance(value, int) and not isinstance(value, bool):
            return SpawnSite(line, col, snippet, "literal", domain_value=value)
        dotted = _dotted_name(head)
        if dotted is not None:
            return SpawnSite(line, col, snippet, "name", domain_name=dotted)
        return SpawnSite(line, col, snippet, "opaque")


def extract_facts(path: str, source: str, tree: ast.Module) -> FileFacts:
    """Extract :class:`FileFacts` from one parsed module."""
    imports: list[ImportRecord] = []
    symbols: dict[str, SymbolInfo] = {}
    exports: Optional[tuple[str, ...]] = None

    def record_assign(target: ast.expr, value: Optional[ast.AST], lineno: int) -> None:
        nonlocal exports
        if not isinstance(target, ast.Name):
            return
        if target.id == "__all__" and value is not None:
            listed = _string_list(value)
            if listed is not None:
                exports = listed
            return
        if value is None:
            symbols[target.id] = SymbolInfo(target.id, "assign", lineno)
            return
        is_literal, literal = _literal_value(value)
        if is_literal:
            symbols[target.id] = SymbolInfo(
                target.id, "const", lineno, value=literal
            )
        else:
            symbols[target.id] = SymbolInfo(target.id, "assign", lineno)

    for statement in tree.body:
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                imports.append(
                    ImportRecord(
                        alias.name, None, bound, statement.lineno
                    )
                )
        elif isinstance(statement, ast.ImportFrom):
            if statement.module is None or statement.level:
                continue  # relative imports are not used in this tree
            for alias in statement.names:
                imports.append(
                    ImportRecord(
                        statement.module,
                        alias.name,
                        alias.asname or alias.name,
                        statement.lineno,
                    )
                )
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols[statement.name] = SymbolInfo(
                statement.name, "function", statement.lineno
            )
        elif isinstance(statement, ast.ClassDef):
            symbols[statement.name] = SymbolInfo(
                statement.name, "class", statement.lineno
            )
            for member in statement.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    dotted = f"{statement.name}.{member.name}"
                    symbols[dotted] = SymbolInfo(
                        dotted, "function", member.lineno
                    )
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                record_assign(target, statement.value, statement.lineno)
        elif isinstance(statement, ast.AnnAssign):
            record_assign(
                statement.target, statement.value, statement.lineno
            )

    collector = _SpawnCollector(source.splitlines())
    collector.visit(tree)
    return FileFacts(
        path=path,
        digest=source_digest(path, source),
        parts=_module_parts(path),
        imports=tuple(imports),
        symbols=symbols,
        exports=exports,
        spawn_sites=tuple(collector.sites),
    )


@dataclass(frozen=True)
class ResolvedConstant:
    """Where a name resolution landed: defining file, symbol, value."""

    path: str
    symbol: SymbolInfo


class ProjectGraph:
    """The linked cross-module view over a set of :class:`FileFacts`."""

    def __init__(self, facts: Iterable[FileFacts]) -> None:
        self.files: dict[str, FileFacts] = {}
        self._by_parts: dict[tuple[str, ...], str] = {}
        for entry in facts:
            self.files[entry.path] = entry
            self._by_parts[entry.parts] = entry.path
        self._edges: dict[str, frozenset[str]] = {}
        self._closures: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # module resolution
    # ------------------------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[FileFacts]:
        """Find the project file for a dotted import, by suffix match.

        ``repro.sim.streams`` matches ``sim/streams.py`` relative to the
        lint root: leading package components that sit *above* the root
        (``repro`` when the root is ``src/repro``) are stripped one at a
        time until a project module matches.  Exact matches win.
        """
        parts = tuple(dotted.split("."))
        for start in range(len(parts)):
            path = self._by_parts.get(parts[start:])
            if path is not None:
                return self.files[path]
        return None

    def file_ending_with(
        self, suffix: tuple[str, ...]
    ) -> Optional[FileFacts]:
        """The unique project module whose parts end with ``suffix``."""
        matches = [
            path
            for parts, path in self._by_parts.items()
            if parts[-len(suffix):] == suffix
        ]
        if len(matches) == 1:
            return self.files[matches[0]]
        if not matches:
            return None
        # Prefer an exact match, else the shortest (shallowest) module.
        exact = self._by_parts.get(suffix)
        if exact is not None:
            return self.files[exact]
        return self.files[min(matches, key=lambda p: (len(p), p))]

    # ------------------------------------------------------------------
    # name resolution (the cross-module dataflow step)
    # ------------------------------------------------------------------
    def resolve_constant(
        self, facts: FileFacts, dotted: str, _depth: int = 0
    ) -> Optional[ResolvedConstant]:
        """Resolve a (possibly dotted) name to its defining symbol.

        Follows top-level assignment chains and ``import`` /
        ``from … import`` bindings across project modules, bounded to
        :data:`_MAX_RESOLVE_DEPTH` hops.  Returns ``None`` when the
        name leaves the project or is not statically resolvable.
        """
        if _depth > _MAX_RESOLVE_DEPTH:
            return None
        # Direct hit (including dotted class members).
        symbol = facts.symbols.get(dotted)
        if symbol is not None and symbol.kind != "assign":
            return ResolvedConstant(facts.path, symbol)
        head, _, rest = dotted.partition(".")
        for record in facts.imports:
            if record.asname != head:
                continue
            if record.name is not None:
                # from M import name as head; resolve name(.rest) in M —
                # or, when `name` is itself a submodule, resolve rest in it.
                target = self.resolve_module(record.module)
                if target is not None:
                    chained = record.name + (("." + rest) if rest else "")
                    resolved = self.resolve_constant(
                        target, chained, _depth + 1
                    )
                    if resolved is not None:
                        return resolved
                submodule = self.resolve_module(
                    record.module + "." + record.name
                )
                if submodule is not None and rest:
                    return self.resolve_constant(
                        submodule, rest, _depth + 1
                    )
                return None
            # plain `import a.b as head` (or `import a.b`, head == "a")
            target = self.resolve_module(record.module)
            if target is not None and rest:
                return self.resolve_constant(target, rest, _depth + 1)
            return None
        if symbol is not None:
            return ResolvedConstant(facts.path, symbol)
        return None

    # ------------------------------------------------------------------
    # import closure + digests (the incremental-cache keys)
    # ------------------------------------------------------------------
    def _edges_of(self, path: str) -> frozenset[str]:
        cached = self._edges.get(path)
        if cached is not None:
            return cached
        facts = self.files[path]
        edges = set()
        for record in facts.imports:
            target = self.resolve_module(record.module)
            if target is None and record.name is not None:
                target = self.resolve_module(
                    record.module + "." + record.name
                )
            if target is not None and target.path != path:
                edges.add(target.path)
        frozen = frozenset(edges)
        self._edges[path] = frozen
        return frozen

    def import_closure(self, path: str) -> frozenset[str]:
        """All project files transitively imported by ``path`` (+self)."""
        cached = self._closures.get(path)
        if cached is not None:
            return cached
        seen = {path}
        frontier = [path]
        while frontier:
            current = frontier.pop()
            for neighbour in self._edges_of(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        closure = frozenset(seen)
        self._closures[path] = closure
        return closure

    def closure_digest(self, path: str) -> str:
        """Digest of the file's import closure contents."""
        hasher = hashlib.sha256()
        for member in sorted(self.import_closure(path)):
            hasher.update(member.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(self.files[member].digest.encode("ascii"))
            hasher.update(b"\x01")
        return hasher.hexdigest()

    def dependents_of(self, changed: Iterable[str]) -> frozenset[str]:
        """Files whose import closure intersects ``changed`` (+changed).

        This is the ``repro lint --changed`` selection: a change to
        ``sim/streams.py`` re-lints every module that (transitively)
        imports it, because flow findings there may have changed.
        """
        wanted = {p for p in changed if p in self.files}
        selected = set(wanted)
        for path in self.files:
            if self.import_closure(path) & wanted:
                selected.add(path)
        return frozenset(selected)


# ---------------------------------------------------------------------------
# spawn-key analyses shared by the engine (cache keys) and REP006
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ResolvedSpawnSite:
    """A spawn site with its stream domain resolved project-wide.

    ``status`` is one of ``"ok"`` (registered constant used from its
    defining registry module), ``"literal"``, ``"opaque"``,
    ``"unresolved"``, ``"unregistered"`` (resolves to a constant that is
    not a declared domain) or ``"shadow"`` (re-declares a registered
    value outside the registry module).
    """

    path: str
    site: SpawnSite
    status: str
    value: Optional[int]
    detail: str

    def key_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "site": self.site.to_json(),
            "status": self.status,
            "value": self.value,
            "detail": self.detail,
        }


#: Module-path suffix of the spawn-key registry.
_REGISTRY_SUFFIX = ("sim", "streams")


def stream_registry(graph: ProjectGraph) -> Optional[dict[int, str]]:
    """The declared stream domains of the linted tree, if any.

    Every upper-case module-level integer constant of ``sim/streams.py``
    is a declared domain (the convention keeps the registry consumable
    without importing the tree).  Returns ``None`` when the tree has no
    registry module at all.
    """
    registry_facts = graph.file_ending_with(_REGISTRY_SUFFIX)
    if registry_facts is None:
        return None
    domains: dict[int, str] = {}
    for name, info in sorted(registry_facts.symbols.items()):
        if (
            info.kind == "const"
            and name.isupper()
            and isinstance(info.value, int)
            and not isinstance(info.value, bool)
        ):
            domains.setdefault(info.value, name)
    return domains


def registry_path(graph: ProjectGraph) -> Optional[str]:
    facts = graph.file_ending_with(_REGISTRY_SUFFIX)
    return None if facts is None else facts.path


def resolve_spawn_sites(
    graph: ProjectGraph,
    registry: Optional[Mapping[int, str]] = None,
) -> tuple[ResolvedSpawnSite, ...]:
    """Resolve every spawn site in the project against the registry.

    The result participates in the engine's global cache digest: any
    edit that changes a resolution (a moved constant, a new call site, a
    registry change) invalidates the cached findings of every file.
    """
    if registry is None:
        registry = stream_registry(graph) or {}
    reg_path = registry_path(graph)
    resolved: list[ResolvedSpawnSite] = []
    for path in sorted(graph.files):
        facts = graph.files[path]
        for site in facts.spawn_sites:
            resolved.append(
                _resolve_site(graph, facts, site, registry, reg_path)
            )
    return tuple(resolved)


def _resolve_site(
    graph: ProjectGraph,
    facts: FileFacts,
    site: SpawnSite,
    registry: Mapping[int, str],
    reg_path: Optional[str],
) -> ResolvedSpawnSite:
    if site.domain_kind == "literal":
        return ResolvedSpawnSite(
            facts.path,
            site,
            "literal",
            site.domain_value,
            f"bare literal {site.domain_value:#x}"
            if site.domain_value is not None
            else "bare literal",
        )
    if site.domain_kind != "name" or site.domain_name is None:
        return ResolvedSpawnSite(
            facts.path, site, "opaque", None, "opaque spawn-key shape"
        )
    resolution = graph.resolve_constant(facts, site.domain_name)
    if (
        resolution is None
        or resolution.symbol.kind != "const"
        or not isinstance(resolution.symbol.value, int)
        or isinstance(resolution.symbol.value, bool)
    ):
        return ResolvedSpawnSite(
            facts.path,
            site,
            "unresolved",
            None,
            f"`{site.domain_name}` does not resolve to an integer constant",
        )
    value = resolution.symbol.value
    if value not in registry:
        return ResolvedSpawnSite(
            facts.path,
            site,
            "unregistered",
            value,
            f"`{site.domain_name}` = {value:#x} (defined in"
            f" {resolution.path}) is not a declared stream domain",
        )
    if reg_path is not None and resolution.path != reg_path:
        return ResolvedSpawnSite(
            facts.path,
            site,
            "shadow",
            value,
            f"`{site.domain_name}` re-declares registered domain"
            f" {registry[value]} ({value:#x}) in {resolution.path};"
            " import the registry constant instead",
        )
    return ResolvedSpawnSite(
        facts.path, site, "ok", value, registry[value]
    )


def spawn_digest(
    resolved: Sequence[ResolvedSpawnSite],
    registry: Optional[Mapping[int, str]],
) -> str:
    """Digest over all resolved spawn sites + the registry contents."""
    payload = {
        "registry": None
        if registry is None
        else sorted((v, n) for v, n in registry.items()),
        "sites": [site.key_json() for site in resolved],
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()

#!/usr/bin/env python
"""The initial study's scenario: a fictive phone menu plus a simulated user.

Reproduces the Section 6 setup end to end: a participant who has never
seen the device discovers distance scrolling by exploration, then
performs instructed hierarchical selections ("open Settings > Tone
settings > Volume") while the second display shows the task, as the
authors planned for their full study.

Run:  python examples/phone_menu.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.phonemenu import PhoneApp
from repro.core.config import DeviceConfig
from repro.core.menu import flatten_paths
from repro.interaction.user import SimulatedUser


def main() -> None:
    app = PhoneApp.create(seed=7, config=DeviceConfig(debug_display=False))
    device = app.device
    rng = np.random.default_rng(7)
    user = SimulatedUser(device=device, rng=rng)
    device.run_for(0.5)

    print("Phone-menu study (Section 6 protocol)")
    print("=====================================")

    discovery = user.discover()
    print(
        f"\nDiscovery phase: figured out the distance mapping in "
        f"{discovery.time_to_discovery_s:.1f} s "
        f"({discovery.exploratory_movements} exploratory movements)"
    )

    tasks = [
        ("Messages", "Inbox"),
        ("Settings", "Tone settings", "Volume"),
        ("Games", "Snake"),
        ("Organiser", "Alarm clock"),
    ]
    all_paths = set(flatten_paths(device.firmware.cursor.root))
    assert all(tuple(t) in all_paths for t in tasks)

    print("\nInstructed selection tasks:")
    for path in tasks:
        app.show_instruction("Select " + " > ".join(path))
        start = device.now
        wrong = 0
        for label in path:
            labels = [e.label for e in device.firmware.cursor.entries]
            result = user.select_entry(labels.index(label))
            wrong += result.wrong_activations
        elapsed = device.now - start
        action, recorded = app.last_activation()
        ok = recorded == tuple(path)
        print(
            f"  {' > '.join(path):<42} {elapsed:5.1f} s  "
            f"wrong={wrong}  {'OK' if ok else 'MISSED'}"
        )
        # Back to the root for the next task.
        while device.depth > 0:
            device.click("back")

    print(f"\nActivations logged by the application: {len(app.activations)}")
    print(f"RF packets received by the host PC: "
          f"{len(device.board.rf_host.received)}")
    print(f"Battery remaining: {device.board.battery.state_of_charge:.1%}")


if __name__ == "__main__":
    main()

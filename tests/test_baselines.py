"""Tests for the competing scrolling techniques (Related Work models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ALL_TECHNIQUES,
    ButtonScroller,
    DistScrollTechnique,
    HeadMouseScroller,
    OperatorTimes,
    PointNMoveScroller,
    PressurePadScroller,
    TechniqueFault,
    TechniqueInfo,
    TiltScroller,
    TouchScroller,
    WheelScroller,
    YoYoScroller,
)
from repro.interaction.gloves import GLOVES

#: The techniques that declare a fault seam, with their first surface.
FAULT_SURFACES = {
    "pointnmove": "grip-loss",
    "headmouse": "tracker-dropout",
    "pressurepad": "pad-stuck",
}


def _mean_time(technique, pairs, n_entries):
    return float(
        np.mean([technique.select(s, t, n_entries).duration_s for s, t in pairs])
    )


class TestInterfaceContract:
    @pytest.mark.parametrize("name", sorted(ALL_TECHNIQUES))
    def test_select_returns_valid_trial(self, name):
        technique = ALL_TECHNIQUES[name](rng=np.random.default_rng(1))
        trial = technique.select(0, 5, 10)
        assert trial.duration_s > 0
        assert trial.errors >= 0
        assert trial.operations >= 0

    @pytest.mark.parametrize("name", sorted(ALL_TECHNIQUES))
    def test_out_of_range_target_rejected(self, name):
        technique = ALL_TECHNIQUES[name](rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            technique.select(0, 10, 10)

    def test_qualitative_properties_match_paper(self):
        """The Related Work critique table: hands, gloves, mechanics."""
        rng = np.random.default_rng(0)
        wheel = WheelScroller(rng=rng)
        assert not wheel.one_handed  # TUISTER needs both hands
        assert wheel.mechanical_parts
        yoyo = YoYoScroller(rng=rng)
        assert yoyo.one_handed
        assert yoyo.body_attached  # attached to the garment
        assert yoyo.mechanical_parts  # spring + wheel
        touch = TouchScroller(rng=rng)
        assert not touch.glove_compatible
        dist = DistScrollTechnique(rng=rng)
        assert dist.one_handed
        assert dist.glove_compatible
        assert not getattr(dist, "mechanical_parts")


class TestButtonScroller:
    def test_time_linear_in_distance(self):
        rng = np.random.default_rng(7)
        technique = ButtonScroller(rng=rng)
        short = np.mean(
            [technique.select(0, 2, 40).duration_s for _ in range(20)]
        )
        far = np.mean(
            [technique.select(0, 30, 40).duration_s for _ in range(20)]
        )
        assert far > short + 1.0

    def test_single_step_is_one_press(self):
        technique = ButtonScroller(rng=np.random.default_rng(0))
        trial = technique.select(3, 4, 10)
        # 1 scroll press + 1 confirm press.
        assert trial.operations == 2

    def test_auto_repeat_cheaper_than_presses_for_far(self):
        rng = np.random.default_rng(0)
        repeat = ButtonScroller(rng=rng, repeat_threshold=4)
        press_only = ButtonScroller(
            rng=np.random.default_rng(0), repeat_threshold=100
        )
        far_repeat = _mean_time(repeat, [(0, 30)] * 15, 40)
        far_press = _mean_time(press_only, [(0, 30)] * 15, 40)
        assert far_repeat < far_press


class TestTiltScroller:
    def test_rate_control_slower_for_precise_short_moves(self):
        rng = np.random.default_rng(3)
        tilt = TiltScroller(rng=rng)
        buttons = ButtonScroller(rng=np.random.default_rng(3))
        pairs = [(5, 6)] * 20
        assert _mean_time(tilt, pairs, 12) > _mean_time(buttons, pairs, 12)

    def test_completes_far_targets(self):
        technique = TiltScroller(rng=np.random.default_rng(1))
        trial = technique.select(0, 99, 100)
        assert trial.duration_s < 60.0


class TestWheelScroller:
    def test_clutching_appears_for_long_scrolls(self):
        rng = np.random.default_rng(2)
        technique = WheelScroller(rng=rng)
        short = technique.select(0, 5, 50)
        long = technique.select(0, 40, 50)
        assert long.duration_s > short.duration_s
        assert long.operations > short.operations


class TestTouchScroller:
    def test_gloves_explode_error_rate(self):
        bare_errors, arctic_errors = 0, 0
        for seed in range(10):
            bare = TouchScroller(rng=np.random.default_rng(seed))
            arctic = TouchScroller(
                rng=np.random.default_rng(seed), glove=GLOVES["arctic"]
            )
            bare_errors += bare.select(0, 7, 15).errors
            arctic_errors += arctic.select(0, 7, 15).errors
        assert arctic_errors > bare_errors

    def test_flick_count_scales(self):
        technique = TouchScroller(rng=np.random.default_rng(0))
        near = technique.select(0, 2, 100)
        far = technique.select(0, 80, 100)
        assert far.operations > near.operations


class TestYoYoScroller:
    def test_position_control_sublinear_in_distance(self):
        rng = np.random.default_rng(4)
        technique = YoYoScroller(rng=rng)
        near = _mean_time(technique, [(0, 2)] * 15, 40)
        far = _mean_time(technique, [(0, 38)] * 15, 40)
        # Fitts: far/near ratio far below the 19x linear ratio.
        assert far / near < 5.0


class TestDistScrollTechnique:
    def test_full_stack_trial(self):
        technique = DistScrollTechnique(rng=np.random.default_rng(5))
        trial = technique.select(0, 8, 12)
        assert trial.duration_s > 0.3
        assert trial.index_of_difficulty > 0

    def test_device_reused_across_trials(self):
        technique = DistScrollTechnique(rng=np.random.default_rng(5))
        technique.select(0, 4, 12)
        device_a = technique._device
        technique.select(4, 9, 12)
        assert technique._device is device_a

    def test_device_rebuilt_for_new_length(self):
        technique = DistScrollTechnique(rng=np.random.default_rng(5))
        technique.select(0, 4, 12)
        device_a = technique._device
        technique.select(0, 4, 20)
        assert technique._device is not device_a

    def test_sublinear_in_distance(self):
        technique = DistScrollTechnique(rng=np.random.default_rng(6))
        near = np.mean(
            [technique.select(5, 7, 20).duration_s for _ in range(4)]
        )
        far = np.mean(
            [technique.select(0, 19, 20).duration_s for _ in range(4)]
        )
        assert far / near < 4.0


class TestTechniqueRegistry:
    """Registry completeness: no technique ships undocumented."""

    @pytest.mark.parametrize("name", sorted(ALL_TECHNIQUES))
    def test_every_technique_documents_itself(self, name):
        info = ALL_TECHNIQUES[name].info
        assert isinstance(info, TechniqueInfo), name
        assert info.key == name  # registry key and metadata key agree
        assert info.title
        assert info.citation
        assert info.input_model
        assert info.transfer_function
        assert info.control_order in ("position", "rate")
        assert isinstance(info.fault_surfaces, tuple)

    def test_related_work_roster_complete(self):
        """The PAPERS.md retrievals joined the Related Work baselines."""
        expected = {
            "buttons", "tilt", "wheel", "yoyo", "touch",
            "pointnmove", "headmouse", "pressurepad", "distscroll",
        }
        assert set(ALL_TECHNIQUES) == expected

    @pytest.mark.parametrize("name", sorted(ALL_TECHNIQUES))
    def test_same_seed_replays_identical_trials(self, name):
        def run(seed):
            technique = ALL_TECHNIQUES[name](rng=np.random.default_rng(seed))
            trials = [technique.select(0, t, 12) for t in (3, 7, 11, 1)]
            return [(t.duration_s, t.errors, t.operations) for t in trials]

        assert run(123) == run(123)
        assert run(123) != run(321)

    @pytest.mark.parametrize("name", sorted(ALL_TECHNIQUES))
    def test_trials_run_counts_selections(self, name):
        technique = ALL_TECHNIQUES[name](rng=np.random.default_rng(2))
        assert technique.trials_run == 0
        technique.select(0, 4, 10)
        technique.select(2, 6, 10)
        assert technique.trials_run == 2


class TestTechniqueFaults:
    def test_window_is_half_open(self):
        fault = TechniqueFault("grip-loss", 2, 5)
        assert not fault.active(1)
        assert fault.active(2)
        assert fault.active(4)
        assert not fault.active(5)

    @pytest.mark.parametrize("name", sorted(FAULT_SURFACES))
    def test_undeclared_surface_rejected(self, name):
        with pytest.raises(ValueError):
            ALL_TECHNIQUES[name](
                rng=np.random.default_rng(0),
                faults=(TechniqueFault("not-a-surface", 0, 3),),
            )

    def test_idealized_technique_rejects_any_fault(self):
        with pytest.raises(ValueError):
            ButtonScroller(
                rng=np.random.default_rng(0),
                faults=(TechniqueFault("grip-loss", 0, 3),),
            )

    @pytest.mark.parametrize(
        "name,surface", sorted(FAULT_SURFACES.items())
    )
    def test_fault_window_degrades_gracefully(self, name, surface):
        """Inside a window: slower, but every trial still completes."""

        def total(faults):
            technique = ALL_TECHNIQUES[name](
                rng=np.random.default_rng(11), faults=faults
            )
            durations = [
                technique.select(0, 8, 12).duration_s for _ in range(12)
            ]
            assert all(d > 0 for d in durations)  # no trial ever fails
            return sum(durations)

        clean = total(())
        faulted = total((TechniqueFault(surface, 0, 12),))
        assert faulted > clean

    @pytest.mark.parametrize(
        "name,surface", sorted(FAULT_SURFACES.items())
    )
    def test_window_outside_trials_is_inert(self, name, surface):
        """A scheduled-but-never-reached window changes no bytes."""

        def run(faults):
            technique = ALL_TECHNIQUES[name](
                rng=np.random.default_rng(9), faults=faults
            )
            return [
                technique.select(0, 6, 12).duration_s for _ in range(3)
            ]

        assert run(()) == run((TechniqueFault(surface, 50, 60),))


class TestPointNMoveScroller:
    def test_glove_pointing_flags(self):
        technique = PointNMoveScroller(rng=np.random.default_rng(0))
        assert technique.one_handed
        assert technique.body_attached  # it is a glove
        assert not technique.glove_compatible  # it *replaces* the glove

    def test_fitts_sublinear_in_distance(self):
        technique = PointNMoveScroller(rng=np.random.default_rng(4))
        near = _mean_time(technique, [(0, 2)] * 15, 40)
        far = _mean_time(technique, [(0, 38)] * 15, 40)
        assert far / near < 5.0


class TestHeadMouseScroller:
    def test_hands_free_flags(self):
        technique = HeadMouseScroller(rng=np.random.default_rng(0))
        assert technique.one_handed
        assert technique.glove_compatible  # hands never touch it

    def test_neck_fatigue_slows_late_trials(self):
        early, late = [], []
        for seed in range(5):
            technique = HeadMouseScroller(rng=np.random.default_rng(seed))
            durations = [
                technique.select(0, 8, 12).duration_s for _ in range(60)
            ]
            early.extend(durations[:10])
            late.extend(durations[-10:])
        assert float(np.mean(late)) > float(np.mean(early))

    def test_fatigue_saturates_at_declared_horizon(self):
        fresh = HeadMouseScroller(rng=np.random.default_rng(3))
        tired = HeadMouseScroller(rng=np.random.default_rng(3))
        tired._trials_run = 100  # past fatigue_trials: fully fatigued
        fresh_mean = float(
            np.mean([fresh.select(0, 8, 12).duration_s for _ in range(10)])
        )
        tired_mean = float(
            np.mean([tired.select(0, 8, 12).duration_s for _ in range(10)])
        )
        assert tired_mean > fresh_mean


class TestPressurePadScroller:
    def test_force_to_rate_completes_far_targets(self):
        technique = PressurePadScroller(rng=np.random.default_rng(1))
        trial = technique.select(0, 99, 100)
        assert trial.duration_s < 60.0

    def test_gloves_hurt_force_control(self):
        bare_total, arctic_total = 0.0, 0.0
        for seed in range(10):
            bare = PressurePadScroller(rng=np.random.default_rng(seed))
            arctic = PressurePadScroller(
                rng=np.random.default_rng(seed), glove=GLOVES["arctic"]
            )
            bare_total += bare.select(0, 7, 15).duration_s
            arctic_total += arctic.select(0, 7, 15).duration_s
        assert arctic_total > bare_total


class TestOperatorTimes:
    def test_glove_scaling(self):
        times = OperatorTimes()
        scaled = times.scaled(GLOVES["arctic"])
        assert scaled.keypress_s > times.keypress_s
        assert scaled.reaction_s == times.reaction_s  # cognition unaffected

"""10-bit successive-approximation ADC of the PIC 18F452.

The Smart-Its base board digitizes the GP2D120's analog output with the
PIC's built-in 10-bit ADC.  Figure 4 of the paper plots the "measured
analog voltage at Smart-Its input port" — i.e. exactly what this model
produces, scaled back to volts.

Modeled effects: reference-voltage scaling, 10-bit quantization, integral
non-linearity (a gentle bow, < 1 LSB typical), sample-and-hold noise, and
conversion time (the PIC needs ~20 µs per conversion, which matters only
for the firmware's cycle budget accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = ["ADCParams", "ADC", "AnalogSource"]

#: Type of a callable returning a voltage for a simulated time.
AnalogSource = Callable[[float], float]


@dataclass(frozen=True)
class ADCParams:
    """Converter parameters.

    Attributes
    ----------
    resolution_bits:
        Word size; the PIC 18F452 ADC is 10-bit.
    v_ref:
        Full-scale reference voltage.
    inl_lsb:
        Peak integral non-linearity in LSB (applied as a smooth bow).
    noise_lsb_rms:
        RMS input-referred noise in LSB.
    conversion_time_s:
        Time one conversion occupies the converter.
    """

    resolution_bits: int = 10
    v_ref: float = 5.0
    inl_lsb: float = 0.5
    noise_lsb_rms: float = 0.4
    conversion_time_s: float = 20e-6

    @property
    def max_code(self) -> int:
        """Largest output code (1023 for 10 bits)."""
        return (1 << self.resolution_bits) - 1

    @property
    def lsb_volts(self) -> float:
        """Voltage step of one code."""
        return self.v_ref / (self.max_code + 1)


@dataclass
class ADC:
    """A multi-channel ADC front end.

    Channels are registered with :meth:`attach`; the firmware then calls
    :meth:`sample` with the current simulated time and a channel number,
    mirroring how the C firmware selects an ADC channel and starts a
    conversion.

    Parameters
    ----------
    params:
        Converter electrical parameters.
    rng:
        Noise generator; ``None`` gives an ideal noiseless converter.
    fault_hook:
        Optional fault-injection hook ``(time_s, channel, code) -> code``
        consulted after quantization on every conversion (see
        :mod:`repro.faults`).  ``None`` means a healthy converter.
    """

    params: ADCParams = field(default_factory=ADCParams)
    rng: Optional[np.random.Generator] = None
    fault_hook: Optional[Callable[[float, int, int], int]] = None

    def __post_init__(self) -> None:
        self._channels: dict[int, AnalogSource] = {}
        self.conversions = 0
        from repro.obs.recorder import active_recorder

        recorder = active_recorder()
        self._obs_samples = (
            recorder.metrics.counter("adc.samples")
            if recorder.enabled and recorder.metrics is not None
            else None
        )

    def attach(self, channel: int, source: AnalogSource) -> None:
        """Wire an analog source (a ``time -> volts`` callable) to a channel."""
        if channel < 0:
            raise ValueError(f"channel must be >= 0, got {channel}")
        self._channels[channel] = source

    def detach(self, channel: int) -> None:
        """Remove a channel wiring (no-op if absent)."""
        self._channels.pop(channel, None)

    @property
    def channels(self) -> list[int]:
        """Sorted list of wired channel numbers."""
        return sorted(self._channels)

    def sample(self, time_s: float, channel: int) -> int:
        """Convert the channel's voltage at ``time_s`` to a raw code.

        Raises
        ------
        KeyError
            If nothing is attached to ``channel``.
        """
        try:
            source = self._channels[channel]
        except KeyError:
            raise KeyError(
                f"no analog source attached to ADC channel {channel}"
            ) from None
        voltage = float(source(time_s))
        self.conversions += 1
        if self._obs_samples is not None:
            self._obs_samples.inc()
        code = self._quantize(voltage)
        if self.fault_hook is not None:
            code = int(
                np.clip(self.fault_hook(time_s, channel, code), 0,
                        self.params.max_code)
            )
        return code

    def sample_volts(self, time_s: float, channel: int) -> float:
        """Sample a channel and convert the code back to volts.

        This is the "measured analog voltage at Smart-Its input port" of
        Figure 4 — it carries the quantization of the real measurement.
        """
        return self.sample(time_s, channel) * self.params.lsb_volts

    def code_for_voltage(self, voltage: float) -> int:
        """Ideal (noise-free) code for a voltage — used to place islands."""
        params = self.params
        code = voltage / params.v_ref * (params.max_code + 1)
        return int(np.clip(round(code), 0, params.max_code))

    def codes_for_voltages(self, voltages: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`code_for_voltage` (bit-equal, batched).

        ``np.round`` rounds half to even exactly like builtin ``round``,
        so each element matches the scalar conversion; the island-map
        construction uses this to place every island in one pass.
        """
        params = self.params
        codes = (
            np.asarray(voltages, dtype=float)
            / params.v_ref
            * (params.max_code + 1)
        )
        return np.clip(np.round(codes), 0, params.max_code).astype(np.int64)

    def _quantize(self, voltage: float) -> int:
        params = self.params
        fraction = voltage / params.v_ref
        code = fraction * (params.max_code + 1)
        # Integral non-linearity: a half-sine bow peaking mid-scale.
        code += params.inl_lsb * np.sin(np.pi * np.clip(fraction, 0.0, 1.0))
        if self.rng is not None:
            code += self.rng.normal(0.0, params.noise_lsb_rms)
        return int(np.clip(round(code), 0, params.max_code))

"""Common experiment-result plumbing.

Every experiment module produces an :class:`ExperimentResult`: an id
(matching the DESIGN.md index), a set of named columns and data rows, and
free-form notes.  Benchmarks print them with :meth:`ExperimentResult.table`
— the "same rows/series the paper reports" — and tests assert on the raw
``rows``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """A tabular experiment outcome.

    Attributes
    ----------
    experiment_id:
        DESIGN.md identifier, e.g. ``"FIG4"``.
    title:
        One-line description of what the table shows.
    columns:
        Column names.
    rows:
        Data rows (same arity as ``columns``).
    notes:
        Free-form findings appended under the table.
    """

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one data row (checked against the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        """Append a finding note."""
        self.notes.append(text)

    def column(self, name: str) -> list:
        """Extract one column by name."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.experiment_id}") from None
        return [row[index] for row in self.rows]

    def table(self) -> str:
        """Render a fixed-width text table (what the benches print)."""
        headers = [str(c) for c in self.columns]
        str_rows = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str | Path) -> None:
        """Persist the rows as CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            writer.writerows(self.rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

"""Persona engine: determinism, spec parsing, and the golden pin.

The population studies promise that participant ``i`` of population
seed ``s`` is the same human being no matter which shard, process or
job count computes them.  These tests pin that promise: index-order
independence, partition independence, and a committed golden sample
that fails loudly if the derivation ever drifts.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.interaction.gloves import GLOVES
from repro.interaction.personas import (
    PERSONA_DIMENSIONS,
    Persona,
    parse_spec,
    persona_for_user,
    sample_personas,
    user_rng,
)

GOLDEN = Path(__file__).parent / "data" / "personas_16.json"


class TestDeterminism:
    def test_same_index_same_persona_regardless_of_order(self):
        spec = parse_spec("full")
        forward = [persona_for_user(7, i, spec) for i in range(50)]
        backward = [
            persona_for_user(7, i, spec) for i in reversed(range(50))
        ]
        assert forward == list(reversed(backward))

    def test_partitioned_derivation_matches_whole(self):
        """Deriving users in shard-sized slices changes nothing."""
        spec = parse_spec("full")
        whole = [persona_for_user(3, i, spec) for i in range(60)]
        sliced: list[Persona] = []
        for start, stop in ((0, 13), (13, 30), (30, 47), (47, 60)):
            sliced.extend(
                persona_for_user(3, i, spec) for i in range(start, stop)
            )
        assert sliced == whole

    def test_seed_changes_population(self):
        a = [p.cell() for p in sample_personas(0, 40)]
        b = [p.cell() for p in sample_personas(1, 40)]
        assert a != b

    def test_trial_rng_independent_per_user(self):
        """User RNGs are decorrelated and index-addressable."""
        first = user_rng(5, 10).random(4)
        again = user_rng(5, 10).random(4)
        other = user_rng(5, 11).random(4)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_golden_sixteen_persona_sample(self):
        """Byte-level pin of the first 16 personas of seed 0."""
        payload = [p.to_json() for p in sample_personas(0, 16)]
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert rendered == GOLDEN.read_text(), (
            "persona derivation drifted from tests/data/personas_16.json; "
            "this breaks every pinned population study — if intentional, "
            "regenerate the golden and say so in the changelog"
        )


class TestSpecs:
    def test_full_covers_all_dimensions(self):
        spec = parse_spec("full")
        assert [v for v, _w in spec.gloves] == list(GLOVES)
        assert [v for v, _w in spec.age_band] == list(
            PERSONA_DIMENSIONS["age_band"]
        )

    def test_bare_restricts_to_ideal_conditions(self):
        personas = sample_personas(0, 30, parse_spec("bare"))
        assert {p.glove for p in personas} == {"none"}
        assert {p.motor for p in personas} == {"steady"}
        assert {p.vision for p in personas} == {"normal"}

    def test_restriction_renormalizes_weights(self):
        spec = parse_spec("glove=winter,arctic")
        weights = dict(spec.gloves)
        assert set(weights) == {"winter", "arctic"}
        assert sum(weights.values()) == pytest.approx(1.0)
        personas = sample_personas(0, 30, spec)
        assert {p.glove for p in personas} <= {"winter", "arctic"}

    def test_age_and_glove_aliases(self):
        spec = parse_spec("age=senior;glove=none")
        assert [v for v, _w in spec.age_band] == ["senior"]
        assert [v for v, _w in spec.gloves] == ["none"]

    def test_bad_clause_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("species=android")
        with pytest.raises(ValueError):
            parse_spec("glove=asbestos")

    def test_spec_changes_cache_identity(self):
        assert parse_spec("full").canonical() != parse_spec(
            "glove=none"
        ).canonical()


class TestPersonaEffects:
    def test_senior_tremor_profile_is_slower_and_noisier(self):
        spec = parse_spec("age=senior;motor=tremor;glove=none;vision=low")
        young = parse_spec("age=young;motor=steady;glove=none;vision=normal")
        slow = sample_personas(0, 1, spec)[0].motor_profile(
            np.random.default_rng(1)
        )
        fast = sample_personas(0, 1, young)[0].motor_profile(
            np.random.default_rng(1)
        )
        assert slow.reaction_time_s > fast.reaction_time_s
        assert slow.endpoint_sigma_frac > fast.endpoint_sigma_frac

    def test_cell_label_shape(self):
        persona = sample_personas(0, 1)[0]
        parts = persona.cell().split("/")
        assert len(parts) == 5
        assert parts[0] in PERSONA_DIMENSIONS["age_band"]
        assert parts[4] in GLOVES

"""Integration tests for the extension experiments (fusion, PDA, layout,
firmware ablation, SDAZ long menus, distance profile)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    run_distance_profile,
    run_firmware_ablation,
    run_fusion,
    run_layouts,
    run_long_menus,
    run_pda,
)


class TestFusionExperiment:
    def test_fusion_accuracy_and_dive_story(self):
        result = run_fusion(seed=1)
        errors = [
            e for e in result.column("abs_error_cm") if not math.isnan(e)
        ]
        assert max(errors) < 1.0  # sub-centimeter everywhere measurable
        joined = " ".join(result.notes)
        assert "dual=LOST" not in joined
        assert "single=LOST" in joined

    def test_foldback_rows_flagged(self):
        result = run_fusion(seed=1)
        flags = dict(
            zip(result.column("true_cm"), result.column("in_foldback"))
        )
        assert flags[1.5] == "yes"
        assert flags[15.0] == "no"


class TestPDAExperiment:
    def test_addon_preserves_technique(self):
        result = run_pda(seed=1, n_trials=4, n_users=2)
        by_variant = {r[0]: r for r in result.rows}
        handheld, pda = by_variant["handheld"], by_variant["pda-addon"]
        assert 0.4 < pda[2] / handheld[2] < 2.5
        assert pda[3] >= 0.75  # success rate
        assert pda[4] > handheld[4]  # visibility advantage
        assert pda[5] < handheld[5]  # scan penalty advantage


class TestLayoutExperiment:
    def test_table_covers_grid(self):
        result = run_layouts(seed=1, n_users=3, n_trials=3)
        assert len(result.rows) == 6  # 3 layouts x 2 gloves

    def test_prototype_penalizes_lefties_bare_handed(self):
        result = run_layouts(
            seed=3, n_users=6, n_trials=4, gloves=("none",)
        )
        by_layout = {r[0]: r for r in result.rows}
        assert by_layout["prototype-3-button"][4] > -0.1  # penalty exists-ish
        # The large button has (near) no penalty and no misses bare-handed.
        assert by_layout["single-large-button"][3] == 0.0


class TestFirmwareAblation:
    def test_tradeoff_shape(self):
        result = run_firmware_ablation(seed=1, hold_time_s=3.0)
        flicker = result.column("boundary_flicker_hz")
        latency = result.column("step_latency_ms")
        assert flicker[-1] <= flicker[0]
        assert latency[-1] > latency[0]
        assert all(not math.isnan(v) for v in latency)


class TestLongMenusWithSDAZ:
    def test_three_modes_reported(self):
        result = run_long_menus(
            seed=1, menu_lengths=(20,), n_trials=3, n_users=1
        )
        modes = set(result.column("mode"))
        assert modes == {"flat", "chunked", "sdaz"}

    def test_sdaz_no_wrong_activations_needed(self):
        result = run_long_menus(
            seed=1, menu_lengths=(40,), n_trials=3, n_users=1
        )
        rows = {r[1]: r for r in result.rows}
        assert rows["sdaz"][2] > 0  # real times
        assert rows["sdaz"][3] <= rows["flat"][3] + 0.5


class TestDistanceProfile:
    def test_crossover_shape(self):
        result = run_distance_profile(seed=1, repetitions=4)
        rows = {(r[0], r[1]): r[2] for r in result.rows}
        assert rows[("buttons", 1)] < rows[("distscroll", 1)]
        assert rows[("buttons", 23)] > rows[("distscroll", 23)]

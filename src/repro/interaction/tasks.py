"""Selection-task workloads for user studies and benchmarks.

The initial study used "a fictive mobile phone menu" with instructed
search/select tasks; the planned quantitative studies need controlled
target sequences.  These generators produce reproducible task lists:

* :func:`random_targets` — uniform random entries with a minimum index
  separation (so consecutive trials require real movement);
* :func:`fitts_ladder` — target pairs spanning a controlled range of
  Fitts IDs, for the speed-comparison experiment;
* :func:`hierarchical_tasks` — root-to-leaf navigation tasks over a tree.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.menu import MenuEntry, flatten_paths

__all__ = ["random_targets", "fitts_ladder", "hierarchical_tasks"]


def random_targets(
    n_entries: int,
    n_trials: int,
    rng: np.random.Generator,
    min_separation: int = 1,
) -> list[int]:
    """Uniform random target indices with consecutive separation.

    Parameters
    ----------
    n_entries:
        Size of the menu level.
    n_trials:
        Number of targets to draw.
    rng:
        Random stream.
    min_separation:
        Each target differs from its predecessor by at least this many
        positions (0 allows repeats).

    Raises
    ------
    ValueError
        If the separation is unsatisfiable for the level size.
    """
    if n_entries < 1:
        raise ValueError("n_entries must be >= 1")
    if min_separation >= n_entries:
        raise ValueError(
            f"min_separation {min_separation} unsatisfiable with "
            f"{n_entries} entries"
        )
    targets: list[int] = []
    previous = -10**9
    for _ in range(n_trials):
        while True:
            candidate = int(rng.integers(0, n_entries))
            if abs(candidate - previous) >= min_separation:
                break
        targets.append(candidate)
        previous = candidate
    return targets


def fitts_ladder(
    n_entries: int,
    repetitions: int = 3,
    distances: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """(start, target) pairs sweeping movement distance systematically.

    For each requested index distance the pair is placed symmetrically in
    the list, alternating directions, ``repetitions`` times.  Used to
    sample a wide range of IDs for the Fitts regression.
    """
    if distances is None:
        distances = [d for d in (1, 2, 3, 5, 7, n_entries - 1) if 0 < d < n_entries]
    pairs: list[tuple[int, int]] = []
    for distance in distances:
        if not 0 < distance < n_entries:
            raise ValueError(
                f"distance {distance} impossible in a {n_entries}-entry level"
            )
        for rep in range(repetitions):
            lo = (n_entries - 1 - distance) // 2
            hi = lo + distance
            if rep % 2 == 0:
                pairs.append((lo, hi))
            else:
                pairs.append((hi, lo))
    return pairs


def hierarchical_tasks(
    menu: MenuEntry,
    n_tasks: int,
    rng: np.random.Generator,
) -> Iterator[tuple[str, ...]]:
    """Random root-to-leaf navigation tasks over a menu tree.

    Yields label paths such as ``("Settings", "Sound", "Volume")``; the
    user must descend the hierarchy selecting each component.
    """
    paths = flatten_paths(menu)
    if not paths:
        raise ValueError("menu has no leaves")
    for _ in range(n_tasks):
        yield paths[int(rng.integers(0, len(paths)))]

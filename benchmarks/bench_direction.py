"""EXT-DIR — §7 Q5: scroll down towards oneself, or away?"""

from __future__ import annotations

from repro.experiments import run_direction


def test_bench_direction(benchmark, report):
    result = benchmark.pedantic(
        run_direction,
        kwargs={"seed": 2, "n_users": 10, "n_trials": 10, "n_entries": 10},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert len(result.rows) == 2

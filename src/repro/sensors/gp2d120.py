"""Physics model of the Sharp GP2D120 infra-red distance sensor.

The GP2D120 is the integral part of the DistScroll hardware (Section 4.2).
It triangulates: an IR LED emits a modulated beam, a position-sensitive
detector measures where the reflection lands, and an internal circuit
outputs an analog voltage.  The datasheet curve — and the paper's Figure 4,
which reproduces it via the Smart-Its ADC — has three regimes:

* **fold-back region, 0–4 cm** — voltage *rises steeply* with distance up
  to a peak near 4 cm, so a reading there is ambiguous with a far reading
  ("it cannot be detected if the device is moved away or towards the
  user").  The paper notes advanced users exploit this steep region for
  faster scrolling.
* **measurement range, 4–30 cm** — voltage falls monotonically following
  approximately ``V = a/(d+b) + c`` ("the sensor values are not linear in
  the measurement range").
* **out of range, > 30 cm** — too little light returns; the output drops
  to a floor and "no measurement can be made".

The model layers surface gain, ambient-light noise, shot noise, a 38 ms
internal measurement cycle (per datasheet), and optional corrupted readings
on pathological specular surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.sensors.surfaces import (
    REFERENCE_LIGHT,
    REFERENCE_SURFACE,
    AmbientLight,
    Surface,
)

__all__ = ["GP2D120Params", "GP2D120", "SENSOR_MIN_CM", "SENSOR_MAX_CM"]

#: Nominal measurement range of the GP2D120 (datasheet; quoted in §4.2).
SENSOR_MIN_CM = 4.0
SENSOR_MAX_CM = 30.0


@dataclass(frozen=True)
class GP2D120Params:
    """Electrical parameters of one sensor specimen.

    The defaults reproduce the datasheet typical curve: about 2.75 V at
    4 cm falling to about 0.40 V at 30 cm.  Real specimens vary by a few
    percent; :meth:`GP2D120.specimen` draws a perturbed parameter set so
    experiments can model unit-to-unit variation.

    Attributes
    ----------
    curve_a, curve_b, curve_c:
        Parameters of the in-range law ``V = a/(d+b) + c`` (V*cm, cm, V).
    peak_distance_cm:
        Distance of the fold-back peak (nominally 4 cm).
    floor_voltage:
        Output when nothing reflects (beyond max range), in volts.
    noise_rms:
        RMS of the additive Gaussian output noise at reference conditions.
    cycle_time_s:
        Internal measurement period; the output is a zero-order hold that
        only updates once per cycle (38.3 ms +- 9.6 ms in the datasheet).
    supply_voltage:
        Nominal supply; output saturates at ``supply_voltage - 0.3``.
    """

    curve_a: float = 11.8
    curve_b: float = 0.42
    curve_c: float = 0.08
    peak_distance_cm: float = SENSOR_MIN_CM
    floor_voltage: float = 0.25
    noise_rms: float = 0.012
    cycle_time_s: float = 0.0383
    supply_voltage: float = 5.0

    def __post_init__(self) -> None:
        if self.cycle_time_s <= 0.0:
            raise ValueError(
                f"cycle_time_s must be positive, got {self.cycle_time_s}: the "
                "GP2D120 output is a zero-order hold over its internal "
                "measurement cycle (38.3 ms +- 9.6 ms in the datasheet), so a "
                "non-positive period has no physical meaning — a perturbed "
                "specimen must keep cycle_time_s > 0"
            )

    def in_range_voltage(self, distance_cm: float) -> float:
        """Ideal (noise-free) voltage on the monotone 4–30 cm branch."""
        return self.curve_a / (distance_cm + self.curve_b) + self.curve_c

    @property
    def peak_voltage(self) -> float:
        """Voltage at the fold-back peak (~4 cm)."""
        return self.in_range_voltage(self.peak_distance_cm)

    @property
    def saturation_voltage(self) -> float:
        """Hard ceiling on the analog output."""
        return self.supply_voltage - 0.3


@dataclass
class GP2D120:
    """A simulated GP2D120 specimen measuring the distance to a surface.

    The sensor is *passive* in the simulation: callers (the ADC model, or
    calibration sweeps) ask for the output voltage given the current true
    distance.  Internally the sensor only refreshes its held output once
    per measurement cycle, which is what gives the DistScroll its ~26 Hz
    effective input rate.

    Parameters
    ----------
    params:
        Electrical parameters (a specimen of the datasheet part).
    rng:
        Random generator for noise; pass ``None`` for a noise-free ideal
        sensor (useful in unit tests and for computing island centers).
    surface:
        What the beam currently hits; defaults to the reference surface.
    ambient:
        Lighting conditions; defaults to indoor reference.
    """

    params: GP2D120Params = field(default_factory=GP2D120Params)
    rng: Optional[np.random.Generator] = None
    surface: Surface = REFERENCE_SURFACE
    ambient: AmbientLight = REFERENCE_LIGHT
    #: Optional fault hook ``(time_s, voltage) -> voltage | None``: lets a
    #: :class:`repro.faults.FaultPlan` occlude the beam or drop the return
    #: signal entirely (see :mod:`repro.faults`).
    fault_hook: Optional[Callable[[float, float], Optional[float]]] = None

    def __post_init__(self) -> None:
        self._held_voltage: Optional[float] = None
        self._last_cycle_index: int = -1

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def specimen(
        cls,
        rng: np.random.Generator,
        surface: Surface = REFERENCE_SURFACE,
        ambient: AmbientLight = REFERENCE_LIGHT,
        spread: float = 0.04,
    ) -> "GP2D120":
        """Draw a unit with datasheet-typical part-to-part variation.

        ``spread`` is the relative 1-sigma variation applied to the curve
        parameters (the datasheet tolerances translate to a few percent).
        """
        base = GP2D120Params()
        params = GP2D120Params(
            curve_a=base.curve_a * (1.0 + rng.normal(0.0, spread)),
            curve_b=base.curve_b + rng.normal(0.0, spread),
            curve_c=base.curve_c + rng.normal(0.0, spread * 0.5),
            peak_distance_cm=base.peak_distance_cm + rng.normal(0.0, 0.15),
            floor_voltage=base.floor_voltage,
            noise_rms=base.noise_rms * (1.0 + abs(rng.normal(0.0, spread))),
            cycle_time_s=base.cycle_time_s + rng.normal(0.0, 0.002),
            supply_voltage=base.supply_voltage,
        )
        return cls(params=params, rng=rng, surface=surface, ambient=ambient)

    # ------------------------------------------------------------------
    # ideal transfer function
    # ------------------------------------------------------------------
    def ideal_voltage(self, distance_cm: float) -> float:
        """Noise-free transfer function over the full distance axis.

        Implements the three regimes described in the module docstring.
        """
        params = self.params
        distance_cm = float(distance_cm)
        max_range = min(SENSOR_MAX_CM, self.surface.max_range_cm)
        if distance_cm <= 0.0:
            voltage = params.floor_voltage
        elif distance_cm < params.peak_distance_cm:
            # Fold-back: steep rise from near-floor at contact up to the
            # peak at ~4 cm.  The datasheet shows a roughly linear-in-d
            # climb that is much faster than the in-range decline.
            fraction = distance_cm / params.peak_distance_cm
            span = params.peak_voltage - params.floor_voltage
            voltage = params.floor_voltage + span * fraction**0.8
        elif distance_cm <= max_range:
            voltage = params.in_range_voltage(distance_cm)
        else:
            voltage = params.floor_voltage
        voltage *= self.surface.gain_factor
        return float(np.clip(voltage, 0.0, params.saturation_voltage))

    def ideal_voltage_array(self, distances_cm: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`ideal_voltage`: one array op per regime.

        Bit-equal to calling :meth:`ideal_voltage` element by element (the
        property tests in ``tests/test_vectorized_sensing.py`` pin this):
        the same IEEE-754 operations run in the same order per element,
        only batched.  This is the fast path under the calibration sweeps
        and the island-map construction.
        """
        params = self.params
        d = np.atleast_1d(np.asarray(distances_cm, dtype=float))
        max_range = min(SENSOR_MAX_CM, self.surface.max_range_cm)
        out = np.full(d.shape, params.floor_voltage, dtype=float)
        floor_mask = d <= 0.0
        fold = ~floor_mask & (d < params.peak_distance_cm)
        if fold.any():
            # Per-element on purpose: numpy's vectorized pow can differ
            # from libm's (scalar **) by 1 ulp, which would break the
            # bit-equality contract.  The hot paths (calibration sweeps,
            # island maps) never touch the fold-back, so nothing is lost.
            span = params.peak_voltage - params.floor_voltage
            floor = params.floor_voltage
            peak = params.peak_distance_cm
            out[fold] = [
                floor + span * (x / peak) ** 0.8 for x in d[fold]
            ]
        ranged = ~floor_mask & ~fold & (d <= max_range)
        if ranged.any():
            out[ranged] = params.in_range_voltage(d[ranged])
        out *= self.surface.gain_factor
        np.clip(out, 0.0, params.saturation_voltage, out=out)
        return out

    def in_range(self, distance_cm: float) -> bool:
        """Whether a distance lies on the unambiguous monotone branch."""
        max_range = min(SENSOR_MAX_CM, self.surface.max_range_cm)
        return self.params.peak_distance_cm <= distance_cm <= max_range

    # ------------------------------------------------------------------
    # sampled output
    # ------------------------------------------------------------------
    def output_voltage(self, time_s: float, distance_cm: float) -> float:
        """Analog output at simulated time ``time_s`` for the true distance.

        The internal measurement cycle means the output is a zero-order
        hold: within one ~38 ms cycle repeated reads return the same held
        value; a new measurement (with fresh noise, and possibly a
        corrupted reading on bad surfaces) happens once per cycle.
        """
        cycle = int(time_s / self.params.cycle_time_s)
        if cycle != self._last_cycle_index or self._held_voltage is None:
            self._last_cycle_index = cycle
            self._held_voltage = self._measure(distance_cm)
        if self.fault_hook is not None:
            override = self.fault_hook(time_s, self._held_voltage)
            if override is not None:
                return float(
                    np.clip(override, 0.0, self.params.saturation_voltage)
                )
        return self._held_voltage

    def output_voltage_array(
        self, times_s: "np.ndarray", distances_cm: "np.ndarray"
    ) -> "np.ndarray":
        """Batched :meth:`output_voltage` over paired time/distance samples.

        Bit-equal to ``n`` sequential scalar calls, including the RNG
        stream and the zero-order-hold state left on the sensor: the cycle
        indices are computed in one array op, only samples landing in a
        fresh cycle trigger a measurement (in sample order, so the noise
        draws consume the generator exactly as the scalar loop would), and
        held samples forward-fill vectorized.  Sensors with a fault hook
        fall back to the scalar loop — the hook is a per-sample callable.
        """
        times, dists = np.broadcast_arrays(
            np.atleast_1d(np.asarray(times_s, dtype=float)),
            np.atleast_1d(np.asarray(distances_cm, dtype=float)),
        )
        n = times.shape[0]
        if n == 0:
            return np.empty(0, dtype=float)
        if self.fault_hook is not None:
            return np.array(
                [self.output_voltage(t, d) for t, d in zip(times, dists)],
                dtype=float,
            )
        cycles = (times / self.params.cycle_time_s).astype(np.int64)
        # After sample i the held cycle index always equals cycles[i]
        # (a measurement sets it; a skip implies it was already equal), so
        # "fresh cycle" reduces to comparing consecutive cycle indices.
        fresh = np.empty(n, dtype=bool)
        fresh[0] = (
            cycles[0] != self._last_cycle_index or self._held_voltage is None
        )
        np.not_equal(cycles[1:], cycles[:-1], out=fresh[1:])
        measured_idx = np.flatnonzero(fresh)
        out = np.empty(n, dtype=float)
        measured = self.measure_array(dists[measured_idx])
        out[measured_idx] = measured
        if not fresh.all():
            fill = np.maximum.accumulate(np.where(fresh, np.arange(n), -1))
            lead = fill < 0
            out = out[np.clip(fill, 0, None)]
            if lead.any():
                # fresh[0] is False, so a held voltage exists.
                out[lead] = self._held_voltage
        if measured_idx.size:
            self._last_cycle_index = int(cycles[-1])
            self._held_voltage = float(measured[-1])
        return out

    def _measure(self, distance_cm: float) -> float:
        return self._measure_from_ideal(self.ideal_voltage(distance_cm))

    def _measure_from_ideal(self, voltage: float) -> float:
        """Apply the per-measurement noise model to an ideal voltage."""
        if self.rng is None:
            return voltage
        if self.rng.random() < self.surface.corruption_probability:
            # Beam deflected by a specular boundary: the spot lands at an
            # essentially random position on the detector.
            low = self.params.floor_voltage
            high = self.params.peak_voltage
            return float(self.rng.uniform(low, high))
        noise_rms = self.params.noise_rms * self.ambient.noise_factor
        noisy = voltage + self.rng.normal(0.0, noise_rms)
        return float(np.clip(noisy, 0.0, self.params.saturation_voltage))

    def measure_array(self, distances_cm: "np.ndarray") -> "np.ndarray":
        """Batched measurement: one fresh reading per element.

        The ideal transfer function is evaluated in one vectorized pass
        (that is where the scalar path spends ~80% of its time); the noise
        draws then consume the generator sample by sample, in element
        order.  They cannot be hoisted into one ``rng.normal(size=n)``
        call here — the specular-corruption gate interleaves a uniform
        draw before every noise draw, and batching would reorder the
        stream and silently change every committed golden.  (Generators
        dedicated to a single draw type *can* batch; see
        ``repro.sim.kernel.PeriodicTask`` jitter.)
        """
        ideal = self.ideal_voltage_array(distances_cm)
        rng = self.rng
        if rng is None:
            return ideal
        params = self.params
        corruption = self.surface.corruption_probability
        low = params.floor_voltage
        high = params.peak_voltage
        saturation = params.saturation_voltage
        noise_rms = params.noise_rms * self.ambient.noise_factor
        random = rng.random
        normal = rng.normal
        uniform = rng.uniform
        out = np.empty(ideal.shape[0], dtype=float)
        for i in range(ideal.shape[0]):
            if random() < corruption:
                out[i] = uniform(low, high)
            else:
                noisy = ideal[i] + normal(0.0, noise_rms)
                # branchy min/max is bit-equal to np.clip for finite input
                out[i] = (
                    0.0 if noisy < 0.0
                    else saturation if noisy > saturation
                    else noisy
                )
        return out

    # ------------------------------------------------------------------
    # inversion helpers (used by the island mapping)
    # ------------------------------------------------------------------
    def distance_for_voltage(self, voltage: float) -> float:
        """Distance (cm) on the monotone branch producing ``voltage``.

        Raises
        ------
        ValueError
            If the voltage lies outside the monotone branch's output span.
        """
        params = self.params
        gain = self.surface.gain_factor
        unscaled = voltage / gain
        v_near = params.peak_voltage
        v_far = params.in_range_voltage(min(SENSOR_MAX_CM, self.surface.max_range_cm))
        if not v_far <= unscaled <= v_near:
            raise ValueError(
                f"voltage {voltage:.3f} V outside monotone branch "
                f"[{v_far * gain:.3f}, {v_near * gain:.3f}] V"
            )
        return params.curve_a / (unscaled - params.curve_c) - params.curve_b

"""ABL-GLOVE — §5.2: gloved interaction across techniques + stocktaking."""

from __future__ import annotations

from repro.experiments import run_gloves_bench, run_stocktaking_by_glove


def test_bench_gloves_matrix(benchmark, report):
    result = benchmark.pedantic(
        run_gloves_bench,
        kwargs={"seed": 1, "n_entries": 12, "n_trials": 8},
        rounds=1,
        iterations=1,
    )
    report(result)
    slowdown = {(r[0], r[1]): r[4] for r in result.rows}
    assert slowdown[("arctic", "distscroll")] < slowdown[("arctic", "touch")]


def test_bench_stocktaking_by_glove(benchmark, report):
    result = benchmark.pedantic(
        run_stocktaking_by_glove,
        kwargs={"seed": 2, "n_items": 4},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert all(rate > 2.0 for rate in result.column("items_per_minute"))

"""Canonical registry of trace-channel names.

Every channel a component publishes on the run's
:class:`~repro.sim.trace.Tracer` is declared here, once.  Call sites
import these constants instead of free-typing string literals: a typo in
a literal silently creates a brand-new empty channel and every consumer
reading the intended one sees nothing — the reprolint rule ``REP003``
(:mod:`repro.devtools.rules.channels`) rejects any literal passed to a
tracer method that is not in :data:`CHANNELS`.

Adding a channel is two lines: declare the constant, add it to
:data:`CHANNELS`.  The registry is intentionally a plain frozenset of
strings so the linter (and tests) can consume it without importing any
simulation machinery.
"""

from __future__ import annotations

__all__ = [
    "EVENTS",
    "FAULTS",
    "FAULT_RECOVERY",
    "SPANS",
    "METRICS",
    "CHANNELS",
    "is_registered",
]

#: Interaction events emitted by the firmware (one record per
#: :class:`~repro.core.events.InteractionEvent`).
EVENTS = "events"

#: One record per injected hardware fault (see :mod:`repro.faults`).
FAULTS = "faults"

#: One record per firmware recovery action, paired with :data:`FAULTS`.
FAULT_RECOVERY = "fault.recovery"

#: One record per completed observability span (see :mod:`repro.obs`);
#: the value is ``(name, end, depth, attrs)`` and the record time is the
#: span's sim-time start.
SPANS = "spans"

#: Metric snapshots published by :meth:`repro.obs.Recorder.record_snapshot`
#: — at most a handful per run, each a full registry snapshot dict.
METRICS = "metrics"

#: Every channel name any component may record on.  ``repro lint``
#: enforces that tracer call sites only use names from this set.
CHANNELS: frozenset[str] = frozenset(
    {EVENTS, FAULTS, FAULT_RECOVERY, SPANS, METRICS}
)


def is_registered(name: str) -> bool:
    """Whether ``name`` is a declared trace channel."""
    return name in CHANNELS

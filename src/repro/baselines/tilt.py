"""Tilt-based rate-control scrolling (Rock'n'Scroll / TiltText family).

Related-work techniques ([2], [11], [17]) scroll by tilting the device:
the tilt angle sets a scroll *velocity* (rate control).  The paper's
critiques — "by tilting the device the user also changes the viewing
angle on the display significantly" and "using this input method for a
longer period of time is fatiguing" — show up in the model as a
readability penalty at high tilt and a velocity cap.

Rate control has well-known dynamics: a ramp-up to cruise velocity, a
braking phase, and a stopping error proportional to the approach speed,
which forces a slow final approach (the reason first-order control loses
to position control for short, precise movements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.interaction.fitts import index_of_difficulty

__all__ = ["TiltScroller"]


@dataclass
class TiltScroller(ScrollingTechnique):
    """First-order (rate-control) tilt scrolling.

    Parameters
    ----------
    max_rate_entries_s:
        Cruise scroll velocity at full comfortable tilt.
    ramp_time_s:
        Time to tilt from neutral to cruise (and back).
    stop_sigma_entries_per_rate:
        Stopping error std per entries/s of approach velocity.
    """

    name: str = "tilt"
    one_handed: bool = True
    glove_compatible: bool = True  # wrist motion, no fine touch needed
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="tilt",
        title="Tilt-based rate control",
        citation=(
            "Rock'n'Scroll / TiltText family (DistScroll §2 refs "
            "[2], [11], [17])"
        ),
        input_model=(
            "Device tilt angle from an accelerometer (the board's "
            "ADXL311 class of sensor), sampled continuously."
        ),
        transfer_function=(
            "Rate control: tilt angle sets scroll velocity; braking "
            "leaves a stopping error proportional to approach speed, "
            "and reading a tilted display costs an extra beat."
        ),
        control_order="rate",
    )
    max_rate_entries_s: float = 7.0
    ramp_time_s: float = 0.30
    stop_sigma_entries_per_rate: float = 0.16

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Tilt toward the target, brake, correct, select."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        trial = TechniqueTrial(duration_s=0.0)
        trial.index_of_difficulty = index_of_difficulty(
            max(abs(target_index - start_index), 1e-6) + 1e-9, 1.0
        )
        duration = self._lognormal(self.t.reaction_s)
        position = float(start_index)
        # Wrist load: each correction pass is a new tilt gesture.
        passes = 0
        while round(position) != target_index:
            passes += 1
            distance = abs(target_index - position)
            # Choose an approach speed: full rate for far targets, slow
            # creep for the final entries.
            rate = min(self.max_rate_entries_s, max(distance * 1.6, 1.2))
            travel_time = 2 * self.ramp_time_s + distance / rate
            duration += self._lognormal(travel_time, 0.10)
            trial.operations += 1
            sigma = self.stop_sigma_entries_per_rate * rate
            landing = target_index + self.rng.normal(0.0, sigma)
            position = max(0.0, min(landing, float(n_entries - 1)))
            if round(position) != target_index:
                trial.errors += 1
                duration += self._lognormal(self.t.reaction_s)
            if passes > 20:
                position = float(target_index)  # give up creeping entry-wise
                duration += self._lognormal(self.t.keypress_s) * distance
        # Reading the display at an angle costs an extra beat.
        duration += self._lognormal(0.12, 0.3)
        duration += self._confirm_selection(trial)
        trial.duration_s = duration
        return trial

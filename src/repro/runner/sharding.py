"""Deterministic experiment sharding and order-stable merging.

A :class:`Shard` is one independent work unit of an experiment.  Shards
are derived purely from ``(spec, seed)`` — never from worker identity or
execution order — so any process can recompute the shard list and the
merged result is identical for ``--jobs 1`` and ``--jobs N``.

Per-shard randomness: ``param`` shards reuse the experiment seed (each
sweep value builds its hardware fresh from it, exactly as the serial
loop does), while ``users`` shards get one seed per participant — either
from the experiment's own legacy derivation (``seeds_entry``) or from
:func:`shard_seed`, which derives one ``numpy.random.SeedSequence``
child per shard from ``(seed, SHARD_STREAM, index)`` alone, so streams
stay decorrelated no matter how many shards exist and any single shard
is derivable in O(1) — workers never materialize the other S-1 shards
to run one (:func:`make_shard`).  Speculative re-executions and
crash retries call the very same derivation with the very same index,
so a retried shard replays the original stream bit-for-bit.
``userblocks`` shards carry ``(start, count)`` ranges of participant
indices; every participant's streams derive from ``(seed, user_index)``
alone, so neither the block size nor the job count can affect the
merged aggregate's bytes.  ``devicebatch`` shards are the same block
shape over *device* indices — each block steps one
:class:`repro.core.batch.DeviceBatch` under a single kernel batch task,
and per-device streams derive from ``(seed, device_index)`` spawn keys.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.obs.metrics import SNAPSHOT_VERSION, merge_snapshots
from repro.obs.recorder import Recorder, use_recorder
from repro.runner.registry import ExperimentSpec, resolve_entry
from repro.sim import kernel
from repro.sim.streams import SHARD_STREAM

__all__ = [
    "Shard",
    "ShardResult",
    "shard_seed",
    "spawn_shard_seeds",
    "n_shards",
    "make_shard",
    "make_shards",
    "estimate_shard_cost",
    "shard_result_digest",
    "execute_shard",
    "merge_shard_results",
]


@dataclass(frozen=True)
class Shard:
    """One independent work unit of an experiment."""

    experiment_id: str
    index: int
    count: int
    #: Strategy-dependent: ``None`` (whole), a sweep value (param), or a
    #: participant seed (users).
    payload: Any = None


@dataclass
class ShardResult:
    """What one executed shard hands back to the merger."""

    experiment_id: str
    index: int
    #: An :class:`ExperimentResult` partial (whole/param) or a per-user
    #: outcome object (users).
    data: Any
    events: int
    wall_s: float
    #: Observability payload (:meth:`repro.obs.Recorder.payload`) when
    #: the shard ran observed, else ``None``.
    obs: Optional[dict[str, Any]] = None


def shard_seed(seed: int, index: int) -> int:
    """Shard ``index``'s seed, derived in O(1) from ``(seed, index)``.

    A ``SeedSequence`` child under the registered ``SHARD_STREAM``
    domain (rather than ``seed + i`` arithmetic) guarantees the child
    streams are statistically independent and stable under resharding:
    shard ``i``'s seed depends only on ``(seed, i)``, never on how many
    siblings exist.  Speculative and crash-retried re-executions of
    shard ``i`` call this with the same index, so they replay the
    original stream bit-for-bit.
    """
    child = np.random.SeedSequence(seed, spawn_key=(SHARD_STREAM, index))
    return int(child.generate_state(1, np.uint32)[0])


def spawn_shard_seeds(seed: int, n: int) -> list[int]:
    """``n`` decorrelated child seeds — ``shard_seed`` over ``range(n)``."""
    return [shard_seed(seed, index) for index in range(n)]


def n_shards(spec: ExperimentSpec, seed: int) -> int:
    """How many shards :func:`make_shards` would return, computed O(1)."""
    if spec.sharder == "whole":
        return 1
    if spec.sharder == "param":
        return len(spec.shard_values or ())
    if spec.sharder == "users":
        return int(dict(spec.params)[spec.n_users_param])
    if spec.sharder in ("userblocks", "devicebatch"):
        n_users = int(dict(spec.params)[spec.n_users_param])
        block = spec.users_per_shard
        return (n_users + block - 1) // block
    raise ValueError(
        f"{spec.experiment_id}: unknown sharder {spec.sharder!r}"
    )


def make_shard(spec: ExperimentSpec, seed: int, index: int) -> Shard:
    """Derive the single shard ``index`` without materializing the rest.

    O(1) for every sharding strategy except ``users`` specs with a
    legacy ``seeds_entry`` (a master-stream draw is inherently O(n) in
    the participant index; the population-scale sharders — and ``users``
    specs on the default :func:`shard_seed` derivation — never pay it).
    Workers use this to run one shard of a million-user study without
    rebuilding the full shard list.
    """
    count = n_shards(spec, seed)
    if not 0 <= index < count:
        raise IndexError(
            f"{spec.experiment_id}: shard index {index} out of"
            f" range({count})"
        )
    if spec.sharder == "whole":
        return Shard(spec.experiment_id, 0, 1)
    if spec.sharder == "param":
        values = spec.shard_values or ()
        return Shard(spec.experiment_id, index, count, payload=values[index])
    if spec.sharder == "users":
        if spec.seeds_entry is not None:
            user_seed = resolve_entry(spec.seeds_entry)(seed, count)[index]
        else:
            user_seed = shard_seed(seed, index)
        return Shard(spec.experiment_id, index, count, payload=user_seed)
    # userblocks / devicebatch (n_shards already rejected unknowns)
    total = int(dict(spec.params)[spec.n_users_param])
    block = spec.users_per_shard
    start = index * block
    return Shard(
        spec.experiment_id,
        index,
        count,
        payload=(start, min(block, total - start)),
    )


def make_shards(spec: ExperimentSpec, seed: int) -> list[Shard]:
    """Decompose a spec into its deterministic shard list."""
    count = n_shards(spec, seed)
    if spec.sharder == "users" and spec.seeds_entry is not None:
        # One resolve for the whole family: the legacy master-stream
        # derivation is O(n) per call, so make_shard in a loop would be
        # quadratic here.
        user_seeds = resolve_entry(spec.seeds_entry)(seed, count)
        return [
            Shard(spec.experiment_id, i, count, payload=user_seed)
            for i, user_seed in enumerate(user_seeds)
        ]
    return [make_shard(spec, seed, index) for index in range(count)]


def estimate_shard_cost(spec: ExperimentSpec, shard: Shard) -> float:
    """Relative cost estimate for LPT (longest-processing-time) ordering.

    Block sharders carry their block size in the payload — a partial
    trailing block is proportionally cheaper — while the other
    strategies are treated as unit work scaled by the spec's
    ``cost_hint``.  Only the *ordering* matters: the scheduler submits
    expensive shards first so stragglers start early, which is what
    keeps worker utilisation high on skewed workloads.
    """
    if spec.sharder in ("userblocks", "devicebatch"):
        _start, count = shard.payload
        return float(count) * spec.cost_hint
    if (
        spec.sharder == "param"
        and isinstance(shard.payload, (int, float))
        and not isinstance(shard.payload, bool)
    ):
        # Sweep values frequently *are* the size knob (island-map entry
        # counts, synthetic fan-out costs), so a numeric payload doubles
        # as the cost proxy; +1 keeps zero-valued sweep points schedulable.
        return (abs(float(shard.payload)) + 1.0) * spec.cost_hint
    return spec.cost_hint


def shard_result_digest(result: ShardResult) -> str:
    """Content digest of a shard's deterministic payload.

    Covers the data and the kernel event count — everything derived
    from the simulation — and deliberately excludes ``wall_s`` (host
    timing) and ``obs`` (never speculated; observed runs bypass both
    the cache and speculation).  Two executions of the same shard must
    digest identically; the speculation path asserts exactly that when
    a duplicate and its original both finish.
    """
    blob = pickle.dumps(
        (result.experiment_id, result.index, result.events, result.data),
        protocol=4,
    )
    return hashlib.sha256(blob).hexdigest()


def _dispatch_shard(spec: ExperimentSpec, seed: int, shard: Shard) -> Any:
    """Run the shard's entry point (shared by observed/plain paths)."""
    if spec.sharder == "whole":
        return spec.run_whole(seed)
    if spec.sharder == "param":
        kwargs = spec.kwargs()
        kwargs[spec.shard_param] = (shard.payload,)
        data = resolve_entry(spec.entry)(seed=seed, **kwargs)
        if spec.result_index is not None:
            data = data[spec.result_index]
        return data
    if spec.sharder == "users":
        kwargs = {
            name: value
            for name, value in spec.params
            if name != spec.n_users_param
        }
        return resolve_entry(spec.user_entry)(shard.payload, **kwargs)
    if spec.sharder in ("userblocks", "devicebatch"):
        kwargs = {
            name: value
            for name, value in spec.params
            if name != spec.n_users_param
        }
        start, count = shard.payload
        return resolve_entry(spec.user_entry)(seed, start, count, **kwargs)
    raise ValueError(
        f"{spec.experiment_id}: unknown sharder {spec.sharder!r}"
    )


def execute_shard(
    spec: ExperimentSpec,
    seed: int,
    shard: Shard,
    observe: bool = False,
) -> ShardResult:
    """Run one shard, measuring wall time and kernel events.

    With ``observe=True`` the shard runs under a fresh
    :class:`repro.obs.Recorder` and the result carries the payload.
    The recorder only collects sim-derived values (never the wall
    clock), so observed shard payloads merge byte-identically across
    any job count.
    """
    events_before = kernel.global_events_processed()
    start = time.perf_counter()
    obs_payload: Optional[dict[str, Any]] = None
    if observe:
        recorder = Recorder()
        with use_recorder(recorder):
            data: Any = _dispatch_shard(spec, seed, shard)
        events = kernel.global_events_processed() - events_before
        recorder.counter("runner.shards")
        if events:
            recorder.observe(
                "runner.shard.events", float(events), low=1.0, high=1e9
            )
        obs_payload = recorder.payload()
    else:
        data = _dispatch_shard(spec, seed, shard)
        events = kernel.global_events_processed() - events_before
    wall_s = time.perf_counter() - start
    return ShardResult(
        spec.experiment_id, shard.index, data, events, wall_s, obs_payload
    )


def merge_shard_results(
    spec: ExperimentSpec, results: Sequence[ShardResult]
) -> ExperimentResult:
    """Merge shard partials (any order) into the final result.

    Partials are sorted by shard index, so the merged rows match the
    serial sweep order regardless of completion order.  Sharded runs
    carry a provenance note; values are normalized to plain Python
    scalars so fresh and cache-loaded results are byte-identical.
    """
    ordered = sorted(results, key=lambda r: r.index)
    if spec.sharder in ("users", "userblocks", "devicebatch"):
        kwargs = {
            name: value
            for name, value in spec.params
            if name in spec.aggregate_params
        }
        merged = resolve_entry(spec.aggregate_entry)(
            [r.data for r in ordered], **kwargs
        )
    elif len(ordered) == 1:
        merged = ordered[0].data
    else:
        merged = ExperimentResult.merge([r.data for r in ordered])
    if len(ordered) > 1:
        merged.note(
            f"merged from {len(ordered)} shards "
            f"(sharded by {spec.sharder!r})"
        )
    final = merged.normalized()
    observed = [part for part in ordered if part.obs is not None]
    if observed:
        metrics: dict[str, Any] = {}
        spans: list[dict[str, Any]] = []
        for part in observed:
            assert part.obs is not None
            metrics = merge_snapshots(metrics, part.obs["metrics"])
            spans.extend(
                {**record, "shard": part.index}
                for record in part.obs["spans"]
            )
        final.obs = {
            "version": SNAPSHOT_VERSION,
            "metrics": metrics,
            "spans": spans,
        }
    return final

"""`DistScroll` — the assembled device and the library's main entry point.

This is the object a downstream user creates: it owns a simulator, builds
the Smart-Its board, flashes the firmware with a menu, and exposes a clean
facade for applications, examples and experiments.

Example
-------
>>> from repro import DistScroll, build_menu
>>> device = DistScroll(build_menu({"Messages": ["Inbox", "Outbox"],
...                                 "Settings": ["Sound", "Display"]}),
...                     seed=42)
>>> device.hold_at(20.0)          # hold the device 20 cm from the body
>>> device.run_for(0.5)           # let the firmware settle
>>> device.highlighted_label
'Messages'
>>> device.press("select")        # thumb on the top-right button
>>> device.run_for(0.2)
>>> device.visible_menu()[0]
'>Inbox'
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import DeviceConfig
from repro.core.events import InteractionEvent
from repro.core.firmware import Firmware
from repro.faults import FaultPlan
from repro.core.sdaz import SDAZFirmware
from repro.core.menu import MenuEntry, build_menu
from repro.hardware.board import DistScrollBoard, build_distscroll_board
from repro.hardware.buttons import ButtonLayout, RIGHT_HANDED_LAYOUT
from repro.sim import channels
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

__all__ = ["DistScroll"]


class DistScroll:
    """A complete simulated DistScroll device.

    Parameters
    ----------
    menu:
        The menu tree to navigate — either a :class:`MenuEntry` or a
        nested dict/list spec accepted by :func:`build_menu`.
    config:
        Device configuration (ranges, polarity, chunking, ...).
    seed:
        Seed for all randomness (sensor noise, bus errors, bounce).
    layout:
        Physical button layout variant.
    noisy:
        ``False`` gives ideal noise-free hardware for deterministic tests.
    simulator:
        Attach to an existing simulator instead of creating one — used
        when a simulated user and the device must share a clock.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` installed on the board
        before the firmware boots; every injection and firmware recovery
        lands on :attr:`tracer` (channels ``"faults"``/``"fault.recovery"``).
    """

    def __init__(
        self,
        menu: MenuEntry | dict | list,
        config: Optional[DeviceConfig] = None,
        seed: int = 0,
        layout: ButtonLayout = RIGHT_HANDED_LAYOUT,
        noisy: bool = True,
        simulator: Optional[Simulator] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if not isinstance(menu, MenuEntry):
            menu = build_menu(menu)
        self.sim = simulator if simulator is not None else Simulator(seed=seed)
        self.tracer = Tracer()
        # When an observed run is active, completed spans are mirrored
        # onto this device's tracer (registered channel "spans").
        from repro.obs.recorder import active_recorder

        active_recorder().attach_tracer(self.tracer)
        self.board: DistScrollBoard = build_distscroll_board(
            self.sim, layout=layout, noisy=noisy
        )
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.install(self.board, tracer=self.tracer)
        self.config = config or DeviceConfig()
        firmware_cls = (
            SDAZFirmware if self.config.long_menu_mode == "sdaz" else Firmware
        )
        self.firmware = firmware_cls(
            self.board, menu, self.config, on_event=self._trace_event
        )
        self._pressed: set[str] = set()

    # ------------------------------------------------------------------
    # physical interaction (what the hand does)
    # ------------------------------------------------------------------
    def hold_at(self, distance_cm: float) -> None:
        """Place the device at a distance from the body (instantaneous)."""
        self.board.set_pose(distance_cm=distance_cm)

    @property
    def distance_cm(self) -> float:
        """Current true device–body distance."""
        return self.board.distance_cm

    def press(self, name: str = "select") -> None:
        """Press a button (it stays down until :meth:`release`)."""
        self.board.press_button(name)
        self._pressed.add(name)

    def release(self, name: str = "select") -> None:
        """Release a held button."""
        self.board.release_button(name)
        self._pressed.discard(name)

    def click(self, name: str = "select", hold_s: float = 0.08) -> None:
        """Press and release with a human-ish hold time, then settle.

        Runs the simulation long enough for the debouncer to register both
        edges.
        """
        self.press(name)
        self.run_for(hold_s)
        self.release(name)
        self.run_for(0.05)

    # ------------------------------------------------------------------
    # simulation control
    # ------------------------------------------------------------------
    def run_for(self, duration_s: float) -> None:
        """Advance the simulation by a duration."""
        self.sim.run_until(self.sim.now + duration_s)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    # ------------------------------------------------------------------
    # observable state (what the user sees)
    # ------------------------------------------------------------------
    @property
    def highlighted_label(self) -> str:
        """Label of the currently highlighted entry."""
        return self.firmware.cursor.highlighted_entry.label

    @property
    def highlighted_index(self) -> int:
        """Index of the highlighted entry in the current level."""
        return self.firmware.cursor.highlight

    @property
    def depth(self) -> int:
        """Menu depth (0 = root level)."""
        return self.firmware.cursor.depth

    def visible_menu(self) -> list[str]:
        """Text lines currently readable on the top display."""
        return self.board.display_top.visible_text()

    def visible_status(self) -> list[str]:
        """Text lines currently readable on the bottom display."""
        return self.board.display_bottom.visible_text()

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def on_event(self, callback: Callable[[InteractionEvent], None]) -> None:
        """Subscribe an application callback to interaction events."""
        self.firmware.add_listener(callback)

    def events(self) -> list[tuple[float, InteractionEvent]]:
        """All traced interaction events as ``(time, event)`` pairs."""
        channel = self.tracer.get(channels.EVENTS)
        if channel is None:
            return []
        return list(channel)

    def _trace_event(self, event: InteractionEvent) -> None:
        self.tracer.record(channels.EVENTS, self.sim.now, event)

"""Content-addressed on-disk cache for experiment results.

A cache entry's key digests everything that determines the output rows:
the experiment's spec (entry point, parameters, sharding plan), the
seed, and a digest of every ``repro`` source file.  Touch any source
file and every key changes — stale hits are structurally impossible, so
there is no invalidation logic, only a directory of ``<key>.json``
files that can be deleted at will.

Entries store the merged, normalized :class:`ExperimentResult` plus the
original compute cost (wall seconds, kernel events), which the runner
reports for cache hits in ``BENCH_runner.json``.

Two granularities share the directory:

* **experiment entries** (``<key>.json``) — the merged result, exactly
  as before;
* **shard entries** (``<key>.shard.pkl``) — one executed
  :class:`~repro.runner.sharding.ShardResult` keyed on ``(spec, seed,
  shard index, sources)``.  These are what make an interrupted
  ``repro run STUDY1 --users 1_000_000`` resumable: every completed
  shard is durable the moment it merges back, so a second invocation
  recomputes only the shards the interruption lost.  Payloads are
  pickled (shard data is exactly what already crosses the worker
  process boundary); the key's source digest makes stale loads
  structurally impossible, pickle compatibility included.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Optional

from repro.experiments.harness import ExperimentResult
from repro.runner.registry import ExperimentSpec
from repro.runner.sharding import ShardResult

__all__ = ["ResultCache", "source_digest", "default_cache_dir"]

#: Bump when the on-disk entry layout changes.
_FORMAT_VERSION = 1

_source_digest_cache: Optional[str] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro_cache`` under the working dir."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def source_digest() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; any change to the package produces new
    cache keys for every experiment.
    """
    global _source_digest_cache
    if _source_digest_cache is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _source_digest_cache = digest.hexdigest()
    return _source_digest_cache


class ResultCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.shard_hits = 0
        self.shard_misses = 0

    def key(self, spec: ExperimentSpec, seed: int) -> str:
        """Content address for one ``(spec, seed)`` pair."""
        material = json.dumps(
            {
                "format": _FORMAT_VERSION,
                "spec": spec.cache_token(),
                "seed": seed,
                "sources": source_digest(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(
        self, spec: ExperimentSpec, seed: int
    ) -> Optional[tuple[ExperimentResult, dict]]:
        """The cached ``(result, meta)`` for this key, or ``None``."""
        path = self._path(self.key(spec, seed))
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        result = ExperimentResult.from_json(json.dumps(payload["result"]))
        self.hits += 1
        return result, payload.get("meta", {})

    def put(
        self,
        spec: ExperimentSpec,
        seed: int,
        result: ExperimentResult,
        meta: dict,
    ) -> None:
        """Store a merged result and its compute-cost metadata."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(self.key(spec, seed))
        payload = {
            "experiment_id": spec.experiment_id,
            "seed": seed,
            "meta": meta,
            "result": json.loads(result.to_json()),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, ensure_ascii=False))
        tmp.replace(path)

    # ------------------------------------------------------------------
    # shard-level entries
    # ------------------------------------------------------------------
    def shard_key(self, spec: ExperimentSpec, seed: int, index: int) -> str:
        """Content address for one ``(spec, seed, shard index)`` unit."""
        material = json.dumps(
            {
                "format": _FORMAT_VERSION,
                "spec": spec.cache_token(),
                "seed": seed,
                "shard": index,
                "sources": source_digest(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _shard_path(self, key: str) -> Path:
        return self.root / f"{key}.shard.pkl"

    def get_shard(
        self, spec: ExperimentSpec, seed: int, index: int
    ) -> Optional[ShardResult]:
        """The cached executed shard for this key, or ``None``.

        Loaded shards carry no observability payload (observed runs
        bypass the cache entirely, mirroring the experiment-level rule).
        """
        path = self._shard_path(self.shard_key(spec, seed, index))
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError):
            self.shard_misses += 1
            return None
        self.shard_hits += 1
        return ShardResult(
            experiment_id=payload["experiment_id"],
            index=payload["index"],
            data=payload["data"],
            events=payload["events"],
            wall_s=payload["wall_s"],
        )

    def put_shard(
        self, spec: ExperimentSpec, seed: int, index: int, result: ShardResult
    ) -> None:
        """Store one executed shard (atomically; obs payload excluded)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._shard_path(self.shard_key(spec, seed, index))
        payload = {
            "experiment_id": result.experiment_id,
            "index": result.index,
            "data": result.data,
            "events": result.events,
            "wall_s": result.wall_s,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(pickle.dumps(payload, protocol=4))
        tmp.replace(path)

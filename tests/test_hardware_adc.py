"""Tests for the 10-bit ADC model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.adc import ADC, ADCParams


class TestADCBasics:
    def test_full_scale_codes(self, ideal_adc):
        params = ideal_adc.params
        assert params.max_code == 1023
        assert params.lsb_volts == pytest.approx(5.0 / 1024)

    def test_zero_volts_is_code_zero(self):
        adc = ADC(params=ADCParams(inl_lsb=0.0), rng=None)
        adc.attach(0, lambda t: 0.0)
        assert adc.sample(0.0, 0) == 0

    def test_full_scale_clips(self, ideal_adc):
        ideal_adc.attach(0, lambda t: 9.0)
        assert ideal_adc.sample(0.0, 0) == 1023

    def test_midscale_voltage(self):
        adc = ADC(params=ADCParams(inl_lsb=0.0), rng=None)
        adc.attach(0, lambda t: 2.5)
        assert adc.sample(0.0, 0) == 512

    def test_sample_volts_roundtrip(self):
        adc = ADC(params=ADCParams(inl_lsb=0.0), rng=None)
        adc.attach(3, lambda t: 1.234)
        volts = adc.sample_volts(0.0, 3)
        assert volts == pytest.approx(1.234, abs=adc.params.lsb_volts)

    def test_unattached_channel_raises(self, ideal_adc):
        with pytest.raises(KeyError):
            ideal_adc.sample(0.0, 5)

    def test_detach(self, ideal_adc):
        ideal_adc.attach(0, lambda t: 1.0)
        ideal_adc.detach(0)
        with pytest.raises(KeyError):
            ideal_adc.sample(0.0, 0)

    def test_negative_channel_rejected(self, ideal_adc):
        with pytest.raises(ValueError):
            ideal_adc.attach(-1, lambda t: 0.0)

    def test_conversion_counter(self, ideal_adc):
        ideal_adc.attach(0, lambda t: 1.0)
        for _ in range(5):
            ideal_adc.sample(0.0, 0)
        assert ideal_adc.conversions == 5

    def test_source_receives_time(self, ideal_adc):
        seen = []
        ideal_adc.attach(0, lambda t: seen.append(t) or 1.0)
        ideal_adc.sample(3.25, 0)
        assert seen == [3.25]


class TestADCNonIdealities:
    def test_noise_spread_about_half_lsb(self):
        adc = ADC(rng=np.random.default_rng(1))
        adc.attach(0, lambda t: 2.0)
        codes = np.array([adc.sample(0.0, 0) for _ in range(500)])
        assert 0.1 < codes.std() < 1.5

    def test_inl_bows_midscale(self):
        bowed = ADC(params=ADCParams(inl_lsb=1.0), rng=None)
        straight = ADC(params=ADCParams(inl_lsb=0.0), rng=None)
        bowed.attach(0, lambda t: 2.5)
        straight.attach(0, lambda t: 2.5)
        assert bowed.sample(0.0, 0) == straight.sample(0.0, 0) + 1

    def test_code_for_voltage_is_monotone(self, ideal_adc):
        codes = [ideal_adc.code_for_voltage(v) for v in np.linspace(0, 5, 200)]
        assert all(b >= a for a, b in zip(codes, codes[1:]))

    @given(v=st.floats(min_value=-1.0, max_value=8.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_property_codes_always_in_range(self, v):
        adc = ADC(rng=np.random.default_rng(0))
        adc.attach(0, lambda t: v)
        code = adc.sample(0.0, 0)
        assert 0 <= code <= adc.params.max_code

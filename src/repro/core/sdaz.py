"""Speed-dependent automatic zooming for long menus (§7 Q4 extension).

"How to scroll long menus?  A possible solution could be similar to the
one suggested in [6]" — Igarashi & Hinckley's speed-dependent automatic
zooming.  This module adapts that idea to distance scrolling:

* **coarse zoom** — the whole (long) level is represented by ~10 evenly
  spaced *anchor* entries mapped over the scroll range; moving the hand
  sweeps through the list at coarse granularity;
* **dwell to zoom in** — holding a coarse anchor steady for a dwell time
  zooms in: the range is remapped to a fine window of ~10 consecutive
  entries centered on that anchor;
* **edge-hold to pan, retreat to zoom out** — holding a fine-window edge
  pans the window; entering the fast-scroll region (or pressing aux)
  zooms back out to coarse.

Unlike button-paged chunking, the whole traversal is *buttonless*: the
same towards/away movement handles both granularities, which is exactly
the property the SDAZ paper argues for (one continuous control channel).

:class:`SDAZFirmware` subclasses the standard firmware, replacing the
chunk machinery; everything else (islands, debounce, displays, events,
RF) is inherited.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import ZoomChanged
from repro.core.firmware import Firmware
from repro.core.islands import build_island_map

__all__ = ["SDAZFirmware"]

#: Dwell (seconds) holding one coarse anchor before zooming in.
_ZOOM_IN_DWELL_S = 0.45
#: Dwell (seconds) holding a fine-window edge before panning.
_PAN_DWELL_S = 0.40


class SDAZFirmware(Firmware):
    """Firmware variant using speed-dependent zooming for long levels.

    The ``chunk_size`` config field is reused as the anchor/window size
    (the paper's suggested "chunks of e.g. 10 entries").
    """

    def __init__(self, *args, **kwargs) -> None:
        self.zoom: str = "coarse"
        self._window_start: int = 0
        self._dwell_slot: Optional[int] = None
        self._dwell_since: float = 0.0
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def _granularity(self) -> int:
        """Anchor/window capacity (chunk_size, min 2)."""
        return max(self.config.chunk_size or 10, 2)

    def _level_needs_zoom(self) -> bool:
        return len(self.cursor.entries) > self._granularity()

    def anchor_indices(self) -> list[int]:
        """Entry indices represented in the coarse view."""
        n_entries = len(self.cursor.entries)
        k = min(self._granularity(), n_entries)
        if k == 1 or n_entries == 1:
            return [0]
        return [
            round(i * (n_entries - 1) / (k - 1)) for i in range(k)
        ]

    def window_range(self) -> tuple[int, int]:
        """Inclusive (start, end) of the fine window."""
        n_entries = len(self.cursor.entries)
        size = min(self._granularity(), n_entries)
        start = max(0, min(self._window_start, n_entries - size))
        return start, start + size - 1

    def nearest_anchor(self, index: int) -> int:
        """The coarse anchor closest to a target entry."""
        anchors = self.anchor_indices()
        return min(anchors, key=lambda a: abs(a - index))

    # ------------------------------------------------------------------
    # overridden chunk machinery
    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        """SDAZ has no pages; report 1 for display compatibility."""
        return 1

    def chunk_of_index(self, index: int) -> int:
        """SDAZ has no pages; every index is reachable from 'chunk' 0."""
        return 0

    def aim_distance_for_index(self, index: int) -> float:
        """Aim point for an entry *in the current zoom state*.

        Coarse state: the aim of the nearest anchor (callers then dwell
        to zoom in).  Fine state: the aim inside the window.

        Raises
        ------
        ValueError
            In fine state when the entry lies outside the window.
        """
        if not self._level_needs_zoom():
            return super().aim_distance_for_index(index)
        n_slots = self.island_map.n_slots
        if self.zoom == "coarse":
            anchors = self.anchor_indices()
            anchor = self.nearest_anchor(index)
            local = anchors.index(anchor)
        else:
            start, end = self.window_range()
            if not start <= index <= end:
                raise ValueError(
                    f"entry {index} outside fine window [{start}, {end}]"
                )
            local = index - start
        slot = self._slot_for_local_index(local, n_slots)
        return self.island_map.center_distance(slot)

    def distance_tolerance_cm(self, index: int) -> float:
        """Island half-width (cm) of the entry in the current zoom state."""
        if not self._level_needs_zoom():
            return super().distance_tolerance_cm(index)
        n_slots = self.island_map.n_slots
        if self.zoom == "coarse":
            anchors = self.anchor_indices()
            local = anchors.index(self.nearest_anchor(index))
        else:
            start, end = self.window_range()
            if start <= index <= end:
                local = index - start
            else:
                # Outside the window: report the representative width of
                # a mid-window island (all fine islands are equal-sized).
                local = n_slots // 2
        slot = self._slot_for_local_index(local, n_slots)
        return self.island_map.distance_tolerance(
            slot, self.board.distance_sensor
        )

    def _enter_level(self, keep_highlight: bool = False) -> None:
        self.zoom = "coarse"
        self._window_start = 0
        self._dwell_slot = None
        self._chunk = 0
        self._rebuild_islands()
        self._last_valid_code = None
        self._filter.reset()

    def _advance_chunk(self, step: int) -> None:
        """The aux button zooms out instead of paging."""
        if self.zoom == "fine":
            self._set_zoom("coarse")

    def _effective_chunk_size(self) -> int:
        # The base class uses this for chunk arithmetic; in SDAZ the
        # whole level is always "one chunk".
        return max(len(self.cursor.entries), 1)

    def _rebuild_islands(self) -> None:
        if not self._level_needs_zoom():
            # Short level: identical to the flat base behaviour.
            self.zoom = "fine"
            self._window_start = 0
            super()._rebuild_islands()
            return
        self._confirmed_slot = None
        self._candidate_slot = None
        self._candidate_since = 0.0
        if self.zoom == "coarse":
            n_slots = len(self.anchor_indices())
        else:
            start, end = self.window_range()
            n_slots = end - start + 1
        self._island_map = build_island_map(
            self._mapping_sensor(),
            self.board.adc,
            n_slots,
            range_cm=self.config.range_cm,
            island_fill=self.config.island_fill,
            placement=self.config.placement,
        )
        self.board.mcu.free("island-table")
        self.board.mcu.allocate(
            "island-table", ram_bytes=6 * self._island_map.n_slots
        )
        mapping_sensor = self._mapping_sensor()
        self._fast_threshold_code = self.board.adc.code_for_voltage(
            mapping_sensor.ideal_voltage(self.config.range_cm[0] - 0.45)
        )
        self._reentry_code = self.board.adc.code_for_voltage(
            mapping_sensor.ideal_voltage(self.config.range_cm[0] + 1.5)
        )
        self._max_plausible_delta = self._plausible_code_delta()

    # ------------------------------------------------------------------
    # slot handling with zoom transitions
    # ------------------------------------------------------------------
    def _apply_slot_lookup(self, code: int, now: float) -> None:
        if not self._level_needs_zoom():
            super()._apply_slot_lookup(code, now)
            return
        slot = self.island_map.lookup(code)
        self.current_slot = slot
        if slot is None:
            # A momentary gap excursion is still "holding still" — the
            # dwell timer keeps running so noise cannot cancel a zoom.
            self._candidate_slot = None
            return
        if slot != getattr(self, "_confirmed_slot", None):
            cycle = self.board.distance_sensor.params.cycle_time_s
            needed = self.config.confirm_samples * cycle
            if slot != getattr(self, "_candidate_slot", None):
                self._candidate_slot = slot
                self._candidate_since = now
            if now - self._candidate_since < needed - 1e-9:
                return
            self._confirmed_slot = slot
            self._candidate_slot = None

        local = self._local_index_for_slot(slot, self.island_map.n_slots)
        if self.zoom == "coarse":
            index = self.anchor_indices()[local]
        else:
            index = self.window_range()[0] + local
        self._move_highlight(index, now)
        self._track_dwell(slot, local, now)

    def _move_highlight(self, index: int, now: float) -> None:
        from repro.core.events import HighlightChanged

        previous = self.cursor.highlight
        if self.cursor.set_highlight(index):
            self._display_dirty = True
            self._emit(
                HighlightChanged(
                    time=now,
                    index=self.cursor.highlight,
                    label=self.cursor.highlighted_entry.label,
                    previous_index=previous,
                )
            )

    def _track_dwell(self, slot: int, local: int, now: float) -> None:
        if slot != self._dwell_slot:
            self._dwell_slot = slot
            self._dwell_since = now
            return
        held_for = now - self._dwell_since
        if self.zoom == "coarse":
            if held_for >= _ZOOM_IN_DWELL_S:
                self._zoom_in_around(self.cursor.highlight, now)
        else:
            n_slots = self.island_map.n_slots
            if held_for >= _PAN_DWELL_S:
                if local == n_slots - 1:
                    self._pan_window(+1, now)
                elif local == 0:
                    self._pan_window(-1, now)

    def _zoom_in_around(self, index: int, now: float) -> None:
        size = min(self._granularity(), len(self.cursor.entries))
        start = index - size // 2
        start = max(0, min(start, len(self.cursor.entries) - size))
        self._window_start = start
        self._set_zoom("fine", now)

    def _pan_window(self, direction: int, now: float) -> None:
        n_entries = len(self.cursor.entries)
        size = min(self._granularity(), n_entries)
        step = max(size // 2, 1)
        new_start = self._window_start + direction * step
        new_start = max(0, min(new_start, n_entries - size))
        if new_start == self._window_start:
            self._dwell_since = now  # pinned at the list end
            return
        self._window_start = new_start
        self._rebuild_islands()
        self._dwell_slot = None
        self._display_dirty = True
        start, end = self.window_range()
        self._emit(
            ZoomChanged(time=now, zoom="fine", window_start=start,
                        window_end=end)
        )

    def _set_zoom(self, zoom: str, now: Optional[float] = None) -> None:
        if zoom == self.zoom:
            return
        self.zoom = zoom
        self._rebuild_islands()
        self._dwell_slot = None
        self._display_dirty = True
        start, end = self.window_range() if zoom == "fine" else (
            0,
            len(self.cursor.entries) - 1,
        )
        self._emit(
            ZoomChanged(
                time=now if now is not None else self._sim.now,
                zoom=zoom,
                window_start=start,
                window_end=end,
            )
        )

    # ------------------------------------------------------------------
    # fast-scroll region doubles as "zoom out"
    # ------------------------------------------------------------------
    def _process_code(self, code: int, now: float) -> None:
        if (
            self._level_needs_zoom()
            and self.zoom == "fine"
            and code > self._fast_threshold_code
        ):
            self._set_zoom("coarse", now)
            return
        super()._process_code(code, now)

"""DistScroll presented through the common technique interface.

Unlike the operator-level baselines, this adapter runs the *entire*
reproduction stack per trial: GP2D120 physics → ADC → firmware island
mapping → display → a closed-loop simulated user moving a tremor-bearing
hand.  If DistScroll wins a comparison here, it wins against idealized
competitors while carrying its own sensor noise — the conservative
direction for a reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional

from repro.baselines.base import (
    ScrollingTechnique,
    TechniqueInfo,
    TechniqueTrial,
)
from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.interaction.fitts import index_of_difficulty
from repro.interaction.user import MotorProfile, SimulatedUser

__all__ = ["DistScrollTechnique"]


@dataclass
class DistScrollTechnique(ScrollingTechnique):
    """Full-stack DistScroll selection trials.

    Parameters
    ----------
    config:
        Device configuration under test (range, polarity, chunking...).
    profile:
        Motor profile; defaults to the same KLM constants the baselines
        use so the comparison is apples-to-apples.
    """

    name: str = "distscroll"
    one_handed: bool = True
    glove_compatible: bool = True
    info: ClassVar[TechniqueInfo] = TechniqueInfo(
        key="distscroll",
        title="DistScroll distance-based scrolling",
        citation=(
            "Kranz, Holleis, Schmidt — DistScroll: A New One-Handed "
            "Interaction Device (ICDCSW 2005), the source paper"
        ),
        input_model=(
            "GP2D120 infrared distance sensor → 10-bit ADC → firmware "
            "island mapping; the full reproduction stack runs per "
            "trial, sensor noise and all."
        ),
        transfer_function=(
            "Position control: hand distance maps onto the visible "
            "chunk of the list, so any entry in range is one Fitts-law "
            "reach away; an aux button pages between chunks."
        ),
        control_order="position",
    )
    config: DeviceConfig = field(default_factory=DeviceConfig)
    profile: Optional[MotorProfile] = None
    _device: Optional[DistScroll] = field(default=None, init=False, repr=False)
    _user: Optional[SimulatedUser] = field(default=None, init=False, repr=False)
    _n_entries: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.profile is None:
            self.profile = MotorProfile(
                reaction_time_s=self.times.reaction_s,
                verify_dwell_s=self.times.verify_dwell_s,
                button_press_s=self.times.keypress_s,
            )

    def _ensure_device(self, n_entries: int) -> None:
        if self._device is not None and self._n_entries == n_entries:
            return
        labels = [f"Entry {i:02d}" for i in range(n_entries)]
        seed = int(self.rng.integers(2**31))
        # A flat list: the root's children *are* the entries.
        self._device = DistScroll(
            build_menu(labels),
            config=self.config,
            seed=seed,
        )
        self._user = SimulatedUser(
            device=self._device, rng=self.rng, profile=self.profile, glove=self.glove
        )
        # The user already knows the technique in comparison studies.
        self._user.practice_trials = 50
        self._n_entries = n_entries
        self._device.run_for(0.5)

    def select(
        self, start_index: int, target_index: int, n_entries: int
    ) -> TechniqueTrial:
        """Run one full closed-loop selection on the simulated device."""
        self._begin_trial()
        if not 0 <= target_index < n_entries:
            raise ValueError(f"target {target_index} outside 0..{n_entries - 1}")
        self._ensure_device(n_entries)
        device, user = self._device, self._user
        assert device is not None and user is not None

        # Park the hand (and firmware highlight) on the start entry.
        self._park_at(start_index)
        result = user.select_entry(target_index)
        # Leave any submenu the activation entered (flat lists are leaves,
        # so normally a no-op).
        while device.depth > 0:
            device.click("back")

        trial = TechniqueTrial(
            duration_s=result.duration_s,
            errors=result.wrong_activations,
            operations=result.submovements + result.button_misses,
        )
        if result.target_width_cm > 0:
            trial.index_of_difficulty = index_of_difficulty(
                max(result.movement_distance_cm, 1e-6) + 1e-9,
                result.target_width_cm,
            )
        return trial

    def _park_at(self, index: int) -> None:
        device, user = self._device, self._user
        assert device is not None and user is not None
        firmware = device.firmware
        chunk = firmware.chunk_of_index(index)
        guard = 0
        while firmware.chunk != chunk and guard < 2 * firmware.n_chunks:
            device.click("aux")
            guard += 1
        aim = firmware.aim_distance_for_index(index)
        user.hand.move_to(aim, 0.4)
        device.run_for(0.6)

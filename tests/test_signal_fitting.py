"""Tests for the curve-fitting routines behind Figures 4 and 5."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.fitting import fit_hyperbola, fit_power_law, r_squared


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r_squared(y, pred) == pytest.approx(0.0)

    def test_constant_observed(self):
        y = np.full(4, 2.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y, y + 1.0) == 0.0


class TestHyperbolicFit:
    def test_recovers_exact_parameters(self):
        d = np.linspace(4, 30, 27)
        v = 11.8 / (d + 0.42) + 0.08
        fit = fit_hyperbola(d, v)
        assert fit.a == pytest.approx(11.8, rel=1e-3)
        assert fit.b == pytest.approx(0.42, abs=1e-2)
        assert fit.c == pytest.approx(0.08, abs=1e-2)
        assert fit.r2 > 0.99999

    def test_robust_to_noise(self):
        rng = np.random.default_rng(5)
        d = np.linspace(4, 30, 27)
        v = 11.8 / (d + 0.42) + 0.08 + rng.normal(0, 0.01, d.size)
        fit = fit_hyperbola(d, v)
        assert fit.a == pytest.approx(11.8, rel=0.05)
        assert fit.r2 > 0.995

    def test_voltage_distance_roundtrip(self):
        d = np.linspace(4, 30, 27)
        v = 11.8 / (d + 0.42) + 0.08
        fit = fit_hyperbola(d, v)
        for dist in (5.0, 12.0, 25.0):
            voltage = float(fit.voltage(dist))
            assert float(fit.distance(voltage)) == pytest.approx(dist, rel=1e-3)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_hyperbola(np.array([4.0, 5.0]), np.array([2.0, 1.8]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_hyperbola(np.array([4.0, 5.0, 6.0]), np.array([2.0, 1.8]))

    @given(
        a=st.floats(min_value=5.0, max_value=20.0),
        b=st.floats(min_value=-0.5, max_value=3.0),
        c=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_exact_recovery(self, a, b, c):
        d = np.linspace(4, 30, 40)
        v = a / (d + b) + c
        fit = fit_hyperbola(d, v)
        predicted = fit.voltage(d)
        assert float(np.max(np.abs(predicted - v))) < 1e-4


class TestPowerLawFit:
    def test_recovers_exact_power_law(self):
        d = np.linspace(4, 30, 27)
        v = 9.0 * d**-0.85
        fit = fit_power_law(d, v)
        assert fit.k == pytest.approx(9.0, rel=1e-6)
        assert fit.p == pytest.approx(-0.85, abs=1e-9)
        assert fit.r2_log == pytest.approx(1.0)

    def test_rejects_nonpositive_data(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, 2.0]), np.array([1.0, -1.0]))

    def test_sensor_curve_is_nearly_power_law(self):
        """The GP2D120 hyperbola looks like a straight line in log-log —
        the entire point of Figure 5."""
        d = np.linspace(4, 30, 27)
        v = 11.8 / (d + 0.42) + 0.08
        fit = fit_power_law(d, v)
        assert fit.r2_log > 0.998

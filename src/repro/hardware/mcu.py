"""Microchip PIC 18F452 microcontroller model.

The DistScroll firmware runs on "a Microchip PIC 18F452 8-bit
microcontroller with 32 kbytes of flash memory and 1.5 kbytes RAM"
(Section 4).  We do not emulate the instruction set — the firmware logic
itself is re-implemented in :mod:`repro.core.firmware` — but the MCU model
enforces the *constraints* that shaped the original C firmware:

* **memory budgets** — firmware components declare their flash and RAM
  footprints; exceeding the part's 32 KB / 1536 B budget raises, which
  keeps our reimplementation honest about what would actually fit (e.g.
  island tables for very long menus must be chunked, Section 7);
* **cycle budget** — at 10 MIPS (40 MHz crystal, 4 clocks per instruction)
  a firmware tick has a finite instruction budget; the tick accounting
  lets benchmarks report simulated CPU headroom;
* **peripherals** — the ADC and GPIO live here, and the MCU reports its
  supply current to the battery model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.adc import ADC
from repro.hardware.battery import Battery

__all__ = ["MCUParams", "MemoryBudgetError", "PIC18F452"]


class MemoryBudgetError(MemoryError):
    """A firmware component does not fit in the PIC's flash or RAM."""


@dataclass(frozen=True)
class MCUParams:
    """Part parameters of the PIC 18F452.

    Attributes
    ----------
    flash_bytes:
        Program memory (32 KB on the 18F452).
    ram_bytes:
        Data memory (1536 bytes).
    mips:
        Instructions per second at the chosen crystal (10 MIPS at 40 MHz).
    run_current_ma:
        Supply current while running.
    sleep_current_ua:
        Supply current asleep.
    """

    flash_bytes: int = 32 * 1024
    ram_bytes: int = 1536
    mips: float = 10e6
    run_current_ma: float = 12.0
    sleep_current_ua: float = 45.0


@dataclass
class _Allocation:
    owner: str
    flash: int
    ram: int


class PIC18F452:
    """The microcontroller at the heart of the Smart-Its base board.

    Parameters
    ----------
    adc:
        The ADC peripheral (channel wiring happens at board assembly).
    params:
        Part parameters.
    battery:
        Optional battery to draw supply current from as time advances.
    """

    def __init__(
        self,
        adc: ADC,
        params: MCUParams | None = None,
        battery: Battery | None = None,
    ) -> None:
        self.params = params or MCUParams()
        self.adc = adc
        self.battery = battery
        self._allocations: list[_Allocation] = []
        self._instructions_this_tick = 0
        self.total_instructions = 0
        self.ticks = 0

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def allocate(self, owner: str, flash_bytes: int = 0, ram_bytes: int = 0) -> None:
        """Reserve flash and RAM for a firmware component.

        Raises
        ------
        MemoryBudgetError
            If the reservation would exceed the part's capacity.
        """
        if flash_bytes < 0 or ram_bytes < 0:
            raise ValueError("allocation sizes must be non-negative")
        if self.flash_used + flash_bytes > self.params.flash_bytes:
            raise MemoryBudgetError(
                f"{owner}: flash overflow "
                f"({self.flash_used + flash_bytes} > {self.params.flash_bytes} bytes)"
            )
        if self.ram_used + ram_bytes > self.params.ram_bytes:
            raise MemoryBudgetError(
                f"{owner}: RAM overflow "
                f"({self.ram_used + ram_bytes} > {self.params.ram_bytes} bytes)"
            )
        self._allocations.append(_Allocation(owner, flash_bytes, ram_bytes))

    def free(self, owner: str) -> None:
        """Release all reservations made under ``owner``."""
        self._allocations = [a for a in self._allocations if a.owner != owner]

    @property
    def flash_used(self) -> int:
        """Total flash bytes reserved."""
        return sum(a.flash for a in self._allocations)

    @property
    def ram_used(self) -> int:
        """Total RAM bytes reserved."""
        return sum(a.ram for a in self._allocations)

    @property
    def flash_free(self) -> int:
        """Remaining flash bytes."""
        return self.params.flash_bytes - self.flash_used

    @property
    def ram_free(self) -> int:
        """Remaining RAM bytes."""
        return self.params.ram_bytes - self.ram_used

    def memory_report(self) -> dict[str, tuple[int, int]]:
        """Per-owner (flash, ram) usage, for DESIGN-style inventories."""
        report: dict[str, tuple[int, int]] = {}
        for allocation in self._allocations:
            flash, ram = report.get(allocation.owner, (0, 0))
            report[allocation.owner] = (
                flash + allocation.flash,
                ram + allocation.ram,
            )
        return report

    # ------------------------------------------------------------------
    # cycle accounting
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Start a new firmware tick's instruction budget."""
        self._instructions_this_tick = 0
        self.ticks += 1

    def execute(self, instructions: int) -> None:
        """Account for executed instructions within the current tick."""
        if instructions < 0:
            raise ValueError("instruction count must be non-negative")
        self._instructions_this_tick += instructions
        self.total_instructions += instructions

    def tick_budget(self, tick_period_s: float) -> int:
        """Instructions available in one tick of the given period."""
        return int(self.params.mips * tick_period_s)

    def tick_utilization(self, tick_period_s: float) -> float:
        """Fraction of the current tick's budget consumed."""
        budget = self.tick_budget(tick_period_s)
        if budget == 0:
            return 0.0
        return self._instructions_this_tick / budget

    # ------------------------------------------------------------------
    # power
    # ------------------------------------------------------------------
    def consume_power(self, duration_s: float, asleep: bool = False) -> None:
        """Draw supply current from the battery for ``duration_s``."""
        if self.battery is None:
            return
        if asleep:
            current_ma = self.params.sleep_current_ua / 1000.0
        else:
            current_ma = self.params.run_current_ma
        self.battery.draw(current_ma, duration_s)

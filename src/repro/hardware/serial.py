"""Simulated UART/serial link (the PDA's connector interface).

The §7 plan is "a minimized version of the DistScroll as add-on for a
PDA", attached "using the power connector e.g. of mobile phones" (§5.2).
Those connectors expose a UART; this module models it: a byte-oriented,
baud-limited, in-order stream with optional framing-error injection.

Unlike the RF link there is no packet loss — a wired link fails by
corrupting bytes (framing errors), which the add-on protocol must detect
via its frame structure (see :mod:`repro.hardware.pda`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator

__all__ = ["UART"]


class UART:
    """One direction of a wired serial link.

    Parameters
    ----------
    sim:
        Simulator providing the clock.
    baud:
        Line rate in bits/s; with 8N1 framing each byte costs 10 bit
        times.
    framing_error_rate:
        Per-byte probability of delivering a corrupted byte (connector
        microphonics, brown-out glitches).
    rng:
        Error-injection randomness; ``None`` disables corruption.
    """

    BITS_PER_BYTE = 10  # 8N1: start + 8 data + stop

    def __init__(
        self,
        sim: Simulator,
        baud: int = 57_600,
        framing_error_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if baud <= 0:
            raise ValueError(f"baud must be positive, got {baud}")
        if not 0.0 <= framing_error_rate < 1.0:
            raise ValueError(
                f"framing_error_rate must be in [0,1), got {framing_error_rate}"
            )
        self._sim = sim
        self.baud = int(baud)
        self.framing_error_rate = float(framing_error_rate)
        self._rng = rng
        self._on_byte: Optional[Callable[[int], None]] = None
        self._rx_buffer: deque[int] = deque()
        self._line_busy_until = 0.0
        self.bytes_sent = 0
        self.bytes_corrupted = 0

    @property
    def byte_time_s(self) -> float:
        """Serialization time of one byte."""
        return self.BITS_PER_BYTE / self.baud

    def on_byte(self, callback: Callable[[int], None]) -> None:
        """Register a receive ISR; bytes also queue in :meth:`read`."""
        self._on_byte = callback

    def write(self, data: bytes) -> float:
        """Transmit bytes; returns the time the line stays busy.

        Bytes are delivered individually at their serialization times,
        in order, respecting line occupancy from earlier writes.
        """
        start = max(self._sim.now, self._line_busy_until)
        for i, byte in enumerate(data):
            deliver_at = start + (i + 1) * self.byte_time_s
            value = self._maybe_corrupt(byte)
            self._sim.schedule_at(deliver_at, self._make_delivery(value))
        self._line_busy_until = start + len(data) * self.byte_time_s
        self.bytes_sent += len(data)
        return self._line_busy_until - self._sim.now

    def read(self, max_bytes: int = 1 << 16) -> bytes:
        """Drain up to ``max_bytes`` from the receive buffer."""
        out = bytearray()
        while self._rx_buffer and len(out) < max_bytes:
            out.append(self._rx_buffer.popleft())
        return bytes(out)

    @property
    def pending(self) -> int:
        """Bytes waiting in the receive buffer."""
        return len(self._rx_buffer)

    def _maybe_corrupt(self, byte: int) -> int:
        if self._rng is not None and self._rng.random() < self.framing_error_rate:
            self.bytes_corrupted += 1
            return int(self._rng.integers(0, 256))
        return byte

    def _make_delivery(self, byte: int) -> Callable[[], None]:
        def deliver() -> None:
            self._rx_buffer.append(byte)
            if self._on_byte is not None:
                self._on_byte(byte)
        return deliver

"""Fault injection for the simulated DistScroll hardware stack.

Section 4.2 of the paper is a catalogue of failure modes — the ambiguous
fold-back below 4 cm, light and surface disturbances, readings the
firmware must reject as physically impossible — yet a simulation that
only ever exercises the happy path never tests the mitigations.  This
module supplies the missing stress: a seeded, simulator-clock-driven
:class:`FaultPlan` describing *when* and *how hard* each part of the
hardware misbehaves, plus the hook implementations the hardware models
consult on every operation.

Fault taxonomy (one :class:`FaultKind` per injection point):

================== ====================================================
kind               effect while a window is active
================== ====================================================
ADC_GLITCH         each conversion is corrupted to a random code with
                   per-sample probability ``rate``
ADC_STUCK          the converter latches the first code seen in the
                   window and repeats it (stuck-at fault)
I2C_ERROR          each bus transaction attempt fails (NACK/arbitration
                   loss) with probability ``rate``; the bus retries up
                   to its bound, then raises ``I2CError``
DISPLAY_RESET      a display controller power-on-resets (blank panel)
                   once per window; the firmware watchdog re-renders
RF_DROP            each RF packet is lost with probability ``rate``
RF_DUPLICATE       each RF packet is delivered twice with probability
                   ``rate``
BATTERY_SAG        ``magnitude`` volts of extra terminal sag (a failing
                   cell or connector); deep sag browns the board out
                   until the window clears
SENSOR_OCCLUSION   something blocks the beam at ``magnitude`` cm — a
                   near, fold-back-region reading (light/surface
                   disturbance)
SENSOR_DROPOUT     no reflection returns; the sensor outputs its floor
                   voltage as if nothing were in range
================== ====================================================

Every fault lives inside a :class:`FaultWindow` with a start, a duration
and (for per-opportunity kinds) a probability.  The plan is installed on
an assembled board with :meth:`FaultPlan.install`; from then on every
injection and every firmware recovery is recorded on the run's
:class:`~repro.sim.trace.Tracer` (channels ``"faults"`` and
``"fault.recovery"``), so tests can assert that each injected fault was
paired with a recovery.  All randomness is drawn from generators spawned
off the simulator's seed sequence: two runs with the same seed produce
byte-identical traces, faults included.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.sim import channels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (board -> plan)
    from repro.hardware.board import DistScrollBoard
    from repro.obs.recorder import Recorder
    from repro.sim.trace import Tracer

__all__ = [
    "FaultKind",
    "FaultWindow",
    "FaultPlan",
    "DEFAULT_SWEEP_KINDS",
]

#: Trace channel receiving one record per injected fault (registered in
#: :mod:`repro.sim.channels`; kept as a module alias for back-compat).
FAULT_CHANNEL = channels.FAULTS
#: Trace channel receiving one record per firmware recovery action.
RECOVERY_CHANNEL = channels.FAULT_RECOVERY


class FaultKind(Enum):
    """The injection points threaded through the hardware layer."""

    ADC_GLITCH = "adc-glitch"
    ADC_STUCK = "adc-stuck"
    I2C_ERROR = "i2c-error"
    DISPLAY_RESET = "display-reset"
    RF_DROP = "rf-drop"
    RF_DUPLICATE = "rf-duplicate"
    BATTERY_SAG = "battery-sag"
    SENSOR_OCCLUSION = "sensor-occlusion"
    SENSOR_DROPOUT = "sensor-dropout"


#: Kinds whose effect is continuous for the whole window (no per-event roll).
_CONTINUOUS_KINDS = frozenset(
    {
        FaultKind.ADC_STUCK,
        FaultKind.BATTERY_SAG,
        FaultKind.SENSOR_OCCLUSION,
        FaultKind.SENSOR_DROPOUT,
    }
)

#: Default ``magnitude`` per kind (kind-specific meaning, see FaultWindow).
_DEFAULT_MAGNITUDE = {
    FaultKind.BATTERY_SAG: 3.5,  # volts of extra sag: enough to brown out
    FaultKind.SENSOR_OCCLUSION: 2.2,  # occluder distance, cm (fold-back)
}

#: The kinds the robustness sweep turns on together.
DEFAULT_SWEEP_KINDS: tuple[FaultKind, ...] = (
    FaultKind.ADC_GLITCH,
    FaultKind.I2C_ERROR,
    FaultKind.DISPLAY_RESET,
    FaultKind.RF_DROP,
    FaultKind.SENSOR_OCCLUSION,
    FaultKind.SENSOR_DROPOUT,
)


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault: a kind active over ``[start_s, end_s)``.

    Attributes
    ----------
    kind:
        What misbehaves.
    start_s, duration_s:
        Window position on the simulated clock.
    rate:
        Per-opportunity probability for event-like kinds (each ADC
        conversion, bus attempt, RF packet).  Continuous kinds (stuck-at,
        sag, occlusion, dropout) apply for the whole window regardless.
    magnitude:
        Kind-specific strength: sag volts for ``BATTERY_SAG``, occluder
        distance in cm for ``SENSOR_OCCLUSION``; unused elsewhere.
    target:
        Optional scoping — an ADC channel number or display name; ``None``
        hits every instance.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    rate: float = 1.0
    magnitude: float = float("nan")
    target: Optional[int | str] = None

    def __post_init__(self) -> None:
        if self.start_s < 0.0:
            raise ValueError(f"window start must be >= 0, got {self.start_s}")
        if self.duration_s <= 0.0:
            raise ValueError(
                f"window duration must be positive, got {self.duration_s}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if np.isnan(self.magnitude):
            object.__setattr__(
                self, "magnitude", _DEFAULT_MAGNITUDE.get(self.kind, 1.0)
            )

    @property
    def end_s(self) -> float:
        """Time the window closes."""
        return self.start_s + self.duration_s

    def active(self, time_s: float) -> bool:
        """Whether the window covers ``time_s`` (half-open interval)."""
        return self.start_s <= time_s < self.end_s


class FaultPlan:
    """A schedule of fault windows, installable on an assembled board.

    The plan is inert until :meth:`install` binds it to a board's
    simulator and tracer; from then on the hardware hooks consult it on
    every operation.  One plan drives one board for one run.

    Parameters
    ----------
    windows:
        The fault schedule.  Windows may overlap freely (even within a
        kind: the earliest active window wins).
    """

    def __init__(self, windows: Iterable[FaultWindow] = ()) -> None:
        self.windows: list[FaultWindow] = sorted(
            windows, key=lambda w: (w.start_s, w.end_s, w.kind.value)
        )
        self.injections: Counter[FaultKind] = Counter()
        self.recoveries: Counter[FaultKind] = Counter()
        self._sim = None
        self._tracer: Optional["Tracer"] = None
        self._obs: Optional["Recorder"] = None
        self._rng: Optional[np.random.Generator] = None
        #: window ids (indices into ``windows``) not yet expired+recovered,
        #: kept sorted by end time for O(1) polling.
        self._pending = sorted(
            range(len(self.windows)), key=lambda i: self.windows[i].end_s
        )
        #: per-window once-only state
        self._noted: set[int] = set()  # continuous kinds: injection recorded
        self._tripped: set[int] = set()  # DISPLAY_RESET: fired once
        self._stuck_codes: dict[int, int] = {}  # ADC_STUCK latches

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_intensity(
        cls,
        intensity: float,
        duration_s: float,
        kinds: Sequence[FaultKind] = DEFAULT_SWEEP_KINDS,
        period_s: float = 2.0,
        start_s: float = 0.3,
    ) -> "FaultPlan":
        """Deterministic duty-cycled schedule for the robustness sweep.

        Each kind gets one window per ``period_s``, phase-staggered so the
        kinds do not all strike at once; window width and per-opportunity
        rate both scale with ``intensity`` in [0, 1], so the fraction of
        run time under fault grows monotonically with intensity.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        if intensity == 0.0:
            return cls(())
        windows: list[FaultWindow] = []
        width = max(intensity * period_s * 0.45, 0.05)
        rate = float(min(0.95, max(intensity, 0.05)))
        for k_i, kind in enumerate(kinds):
            phase = start_s + (k_i / max(len(kinds), 1)) * period_s * 0.5
            t0 = phase
            while t0 + width < duration_s:
                windows.append(
                    FaultWindow(kind, start_s=t0, duration_s=width, rate=rate)
                )
                t0 += period_s
        return cls(windows)

    @classmethod
    def random(
        cls,
        duration_s: float,
        intensity: float,
        seed: int = 0,
        kinds: Sequence[FaultKind] = DEFAULT_SWEEP_KINDS,
        mean_window_s: float = 0.4,
    ) -> "FaultPlan":
        """Stochastic schedule: Poisson window arrivals per kind.

        Two plans built with the same ``seed`` are identical; different
        seeds produce different schedules (the determinism regression
        tests pin both properties).
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity}")
        rng = np.random.default_rng(seed)
        windows: list[FaultWindow] = []
        expected = intensity * duration_s / max(mean_window_s, 1e-6) * 0.5
        for kind in kinds:
            count = int(rng.poisson(expected))
            for _ in range(count):
                start = float(rng.uniform(0.0, max(duration_s - 0.05, 0.0)))
                width = float(
                    np.clip(rng.exponential(mean_window_s), 0.05, duration_s)
                )
                width = min(width, duration_s - start)
                if width <= 0.0:
                    continue
                windows.append(
                    FaultWindow(
                        kind,
                        start_s=start,
                        duration_s=width,
                        rate=float(min(0.95, max(intensity, 0.05))),
                    )
                )
        return cls(windows)

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(
        self, board: "DistScrollBoard", tracer: Optional["Tracer"] = None
    ) -> "FaultPlan":
        """Thread the plan's hooks through an assembled board.

        Must be called once, before the simulation runs.  Returns the
        plan for chaining.
        """
        if self._sim is not None:
            raise RuntimeError("this FaultPlan is already installed on a board")
        self._sim = board.sim
        self._tracer = tracer
        self._rng = board.sim.spawn_rng()
        board.fault_plan = self
        from repro.obs.recorder import Recorder, active_recorder

        recorder = active_recorder()
        self._obs = recorder if isinstance(recorder, Recorder) else None

        board.adc.fault_hook = self._adc_hook
        board.i2c.fault_hook = self._i2c_hook
        board.rf_link.fault_hook = self._rf_hook
        board.battery.fault_hook = self._battery_hook
        board.display_top.fault_hook = self._make_display_hook("top")
        board.display_bottom.fault_hook = self._make_display_hook("bottom")
        board.distance_sensor.fault_hook = self._make_sensor_hook(
            board.distance_sensor
        )
        if board.spare_distance_sensor is not None:
            board.spare_distance_sensor.fault_hook = self._make_sensor_hook(
                board.spare_distance_sensor
            )
        return self

    # ------------------------------------------------------------------
    # schedule queries
    # ------------------------------------------------------------------
    def active_window(
        self, kind: FaultKind, time_s: float, target: Optional[int | str] = None
    ) -> Optional[tuple[int, FaultWindow]]:
        """Earliest active window of ``kind`` covering ``time_s``.

        Returns ``(window_id, window)`` or ``None``.  ``target`` filters
        windows scoped to a specific channel/display: an unscoped window
        (``target is None``) matches everything.
        """
        for window_id, window in enumerate(self.windows):
            if window.kind is not kind:
                continue
            if window.start_s > time_s:
                break
            if not window.active(time_s):
                continue
            if window.target is not None and target is not None and (
                window.target != target
            ):
                continue
            return window_id, window
        return None

    def expired_windows(self, time_s: float) -> list[tuple[int, FaultWindow]]:
        """Pop windows whose end has passed and which still await recovery.

        The firmware calls this every tick; for each returned window it
        performs its recovery action and then calls :meth:`record_recovery`.
        """
        expired: list[tuple[int, FaultWindow]] = []
        while self._pending and self.windows[self._pending[0]].end_s <= time_s:
            window_id = self._pending.pop(0)
            expired.append((window_id, self.windows[window_id]))
        return expired

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled window has expired and been polled."""
        return not self._pending

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def record_injection(
        self, window_id: int, time_s: float, detail: str
    ) -> None:
        """Count one injected fault and publish it on the trace."""
        window = self.windows[window_id]
        self.injections[window.kind] += 1
        if self._obs is not None:
            self._obs.counter("faults.injected")
            self._obs.counter(f"faults.injected.{window.kind.value}")
        if self._tracer is not None:
            self._tracer.record(
                FAULT_CHANNEL, time_s, (window.kind.value, window_id, detail)
            )

    def record_recovery(
        self, window_id: int, time_s: float, action: str
    ) -> None:
        """Count one firmware recovery and publish it on the trace."""
        window = self.windows[window_id]
        self.recoveries[window.kind] += 1
        if self._obs is not None:
            self._obs.counter("faults.recovered")
            self._obs.emit_span(
                f"fault.{window.kind.value}",
                window.start_s,
                max(time_s, window.start_s),
                {"action": action, "window": window_id},
            )
        if self._tracer is not None:
            self._tracer.record(
                RECOVERY_CHANNEL, time_s, (window.kind.value, window_id, action)
            )

    def _note_once(self, window_id: int, time_s: float, detail: str) -> None:
        """Record a continuous fault's injection once per window."""
        if window_id not in self._noted:
            self._noted.add(window_id)
            self.record_injection(window_id, time_s, detail)

    def _roll(self, window: FaultWindow) -> bool:
        """Per-opportunity Bernoulli draw for event-like kinds."""
        assert self._rng is not None
        return bool(self._rng.random() < window.rate)

    @property
    def total_injections(self) -> int:
        """Injected fault events across all kinds."""
        return sum(self.injections.values())

    @property
    def total_recoveries(self) -> int:
        """Recovery events across all kinds."""
        return sum(self.recoveries.values())

    # ------------------------------------------------------------------
    # hardware hooks
    # ------------------------------------------------------------------
    def _now(self) -> float:
        assert self._sim is not None, "FaultPlan used before install()"
        return self._sim.now

    def _adc_hook(self, time_s: float, channel: int, code: int) -> int:
        """ADC hook: stuck-at latching, then random glitch corruption."""
        hit = self.active_window(FaultKind.ADC_STUCK, time_s, target=channel)
        if hit is not None:
            window_id, _ = hit
            stuck = self._stuck_codes.setdefault(window_id, code)
            self._note_once(window_id, time_s, f"stuck@{stuck}")
            return stuck
        hit = self.active_window(FaultKind.ADC_GLITCH, time_s, target=channel)
        if hit is not None:
            window_id, window = hit
            if self._roll(window):
                assert self._rng is not None
                corrupted = int(self._rng.integers(0, 1024))
                self.record_injection(
                    window_id, time_s, f"ch{channel}:{code}->{corrupted}"
                )
                return corrupted
        return code

    def _i2c_hook(self) -> bool:
        """I2C hook: ``True`` fails the current transaction attempt."""
        now = self._now()
        hit = self.active_window(FaultKind.I2C_ERROR, now)
        if hit is None:
            return False
        window_id, window = hit
        if not self._roll(window):
            return False
        self.record_injection(window_id, now, "nack")
        return True

    def _rf_hook(self) -> Optional[str]:
        """RF hook: ``"drop"``, ``"duplicate"`` or ``None`` per packet."""
        now = self._now()
        hit = self.active_window(FaultKind.RF_DROP, now)
        if hit is not None:
            window_id, window = hit
            if self._roll(window):
                self.record_injection(window_id, now, "drop")
                return "drop"
        hit = self.active_window(FaultKind.RF_DUPLICATE, now)
        if hit is not None:
            window_id, window = hit
            if self._roll(window):
                self.record_injection(window_id, now, "duplicate")
                return "duplicate"
        return None

    def _battery_hook(self) -> float:
        """Battery hook: extra terminal sag in volts."""
        now = self._now()
        hit = self.active_window(FaultKind.BATTERY_SAG, now)
        if hit is None:
            return 0.0
        window_id, window = hit
        self._note_once(window_id, now, f"sag={window.magnitude:.2f}V")
        return float(window.magnitude)

    def _make_display_hook(self, name: str):
        """Display hook: ``True`` power-on-resets the panel (once/window)."""

        def hook() -> bool:
            now = self._now()
            hit = self.active_window(FaultKind.DISPLAY_RESET, now, target=name)
            if hit is None:
                return False
            window_id, window = hit
            if window_id in self._tripped:
                return False
            if not self._roll(window):
                return False
            self._tripped.add(window_id)
            self.record_injection(window_id, now, f"reset:{name}")
            return True

        return hook

    def _make_sensor_hook(self, sensor):
        """Sensor hook: overrides the output voltage, or ``None``."""

        def hook(time_s: float, voltage: float) -> Optional[float]:
            hit = self.active_window(FaultKind.SENSOR_OCCLUSION, time_s)
            if hit is not None:
                window_id, window = hit
                self._note_once(
                    window_id, time_s, f"occluder@{window.magnitude:.1f}cm"
                )
                return sensor.ideal_voltage(float(window.magnitude))
            hit = self.active_window(FaultKind.SENSOR_DROPOUT, time_s)
            if hit is not None:
                window_id, _ = hit
                self._note_once(window_id, time_s, "dropout")
                return float(sensor.params.floor_voltage)
            return None

        return hook

"""STUDY1 — the initial user study of Section 6, quantified and scaled.

The paper's protocol: "We presented our new interaction technique to
several people, students, colleagues and people without direct technical
background.  We handed them the DistScroll device and observed their
interactions.  Even when no hints were given, the manner of operation was
promptly discovered.  Shortly after knowing the relation between menu
entry selection and distance, all users were able to nearly errorless
use the device."

The reproduction runs N simulated participants through the same arc:
an unguided discovery phase on the fictive phone menu, then blocks of
selection trials.  Reported per block: error rate (wrong activations per
trial), mean selection time, and the fraction of error-free users — the
paper's qualitative claims map to (a) discovery within tens of seconds
without hints and (b) block-2+ error rates near zero.

Two execution scales share one aggregation layer:

* **classic** (`run_user_study`, default n_users=12) drives the full
  closed-loop :class:`~repro.interaction.user.SimulatedUser` against a
  real simulated device — high fidelity, ~seconds per participant;
* **population** (`run_scaled_user_study`, ``--users N``) draws each
  participant from the :mod:`~repro.interaction.personas` engine and
  samples trials from the same Fitts/motor model analytically — no
  event kernel, ~tens of microseconds per participant, CPU-bound to
  millions of users.

Both paths fold per-user records into a :class:`StudyAggregate` built
from the streaming primitives in :mod:`repro.analysis.stats`: exact
mergeable moments, fixed-bin quantile sketches and per-persona-cell
counters.  Aggregator state is O(1) in the user count and ``merge()``
is exactly associative and commutative, so the sharded runner combines
shard aggregates byte-identically regardless of ``--jobs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import reduce
from typing import Any, Optional

import numpy as np

from repro.analysis.stats import CellCounter, QuantileSketch, StreamingMoments
from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.interaction.fitts import movement_time
from repro.interaction.personas import (
    Persona,
    parse_spec,
    persona_for_user,
    user_rng,
)
from repro.interaction.tasks import (
    Scenario,
    battery as resolve_battery,
    random_targets,
    scenario_distances,
)
from repro.interaction.user import SimulatedUser

__all__ = [
    "run_user_study",
    "user_study_seeds",
    "run_single_user",
    "aggregate_user_study",
    "StudyAggregate",
    "simulate_user_fast",
    "run_user_block",
    "finalize_scaled_study",
    "run_scaled_user_study",
    "UserOutcome",
    "STUDY_MENU_LABELS",
]

#: Top level of the fictive phone menu used in the study (flat for the
#: selection blocks; the hierarchical tasks live in the examples).
STUDY_MENU_LABELS = [
    "Messages",
    "Call register",
    "Contacts",
    "Settings",
    "Gallery",
    "Organiser",
    "Games",
    "Extras",
    "Services",
    "Profiles",
]


@dataclass
class UserOutcome:
    """Everything one simulated participant contributes to the tables.

    The parallel runner farms one :func:`run_single_user` call per shard
    and reassembles with :func:`aggregate_user_study`; serial execution
    walks the same two functions, so both paths are numerically identical.
    The population path produces the same shape, with one entry per
    battery scenario instead of per block.
    """

    discovered: bool
    time_to_discovery_s: float
    exploratory_movements: int
    block_errors: list[float]
    block_times: list[float]
    block_subs: list[float]


def user_study_seeds(seed: int, n_users: int) -> list[int]:
    """Per-participant seeds, drawn from one master stream.

    Kept as sequential draws from ``default_rng(seed)`` (rather than
    ``SeedSequence`` spawning) so the committed STUDY1 numbers are
    unchanged; each participant is fully determined by their own seed.
    """
    master = np.random.default_rng(seed)
    return [int(master.integers(2**31)) for _ in range(n_users)]


def run_single_user(
    user_seed: int,
    n_blocks: int,
    trials_per_block: int,
    config: DeviceConfig | None = None,
    persona: Optional[Persona] = None,
) -> UserOutcome:
    """One participant's discovery phase plus all selection blocks.

    With a ``persona`` the participant's motor profile, glove,
    handedness and tremor come from the persona engine; without one the
    profile is drawn from the base population (the committed STUDY1
    numbers).
    """
    rng = np.random.default_rng(user_seed)
    device = DistScroll(
        build_menu(STUDY_MENU_LABELS), config=config, seed=user_seed
    )
    if persona is None:
        user = SimulatedUser(device=device, rng=rng)
    else:
        user = SimulatedUser.for_persona(device, rng, persona)
    device.run_for(0.5)

    discovery = user.discover()

    block_errors: list[float] = []
    block_times: list[float] = []
    block_subs: list[float] = []
    for _block in range(n_blocks):
        targets = random_targets(
            len(STUDY_MENU_LABELS), trials_per_block, rng, min_separation=2
        )
        errors = 0
        times = []
        subs = []
        for target in targets:
            trial = user.select_entry(target)
            errors += trial.wrong_activations
            times.append(trial.duration_s)
            subs.append(trial.submovements)
            while device.depth > 0:
                device.click("back")
        block_errors.append(errors / trials_per_block)
        block_times.append(float(np.mean(times)))
        block_subs.append(float(np.mean(subs)))
    return UserOutcome(
        discovered=discovery.discovered,
        time_to_discovery_s=discovery.time_to_discovery_s,
        exploratory_movements=discovery.exploratory_movements,
        block_errors=block_errors,
        block_times=block_times,
        block_subs=block_subs,
    )


# ---------------------------------------------------------------------------
# streaming aggregation
# ---------------------------------------------------------------------------

#: Quantile-sketch bin specs (matching the repro.obs histogram layout
#: philosophy: fixed log-spaced edges, never data-adaptive).
_DISCOVERY_SKETCH = (0.05, 1e3, 32)
_MOVEMENTS_SKETCH = (0.5, 1e4, 32)
_TRIAL_SKETCH = (1e-2, 1e4, 32)


class StudyAggregate:
    """Streaming, exactly-mergeable aggregate of one user study.

    Holds O(1) state per segment (block or battery scenario) no matter
    how many participants stream through: exact
    :class:`~repro.analysis.stats.StreamingMoments` for the table
    columns, fixed-bin :class:`~repro.analysis.stats.QuantileSketch`
    for the medians/percentiles, and per-persona-cell counters/moments
    for the scenario × persona report.  ``merge()`` is exactly
    associative and commutative with a fresh instance as identity, so
    any partition of the population over shards merges to the same
    bytes (see :meth:`snapshot`).
    """

    __slots__ = (
        "segments",
        "n_users",
        "discovered",
        "discovery_time",
        "discovery_sketch",
        "exploratory_sketch",
        "seg_errors",
        "seg_times",
        "seg_subs",
        "seg_errorless",
        "seg_time_sketch",
        "cell_users",
        "cell_errors",
        "cell_times",
    )

    def __init__(self, segments: tuple[str, ...]) -> None:
        if not segments:
            raise ValueError("a study needs at least one segment")
        self.segments = tuple(segments)
        self.n_users = 0
        self.discovered = 0
        self.discovery_time = StreamingMoments()
        self.discovery_sketch = QuantileSketch(*_DISCOVERY_SKETCH)
        self.exploratory_sketch = QuantileSketch(*_MOVEMENTS_SKETCH)
        self.seg_errors = [StreamingMoments() for _ in segments]
        self.seg_times = [StreamingMoments() for _ in segments]
        self.seg_subs = [StreamingMoments() for _ in segments]
        self.seg_errorless = [0 for _ in segments]
        self.seg_time_sketch = [
            QuantileSketch(*_TRIAL_SKETCH) for _ in segments
        ]
        self.cell_users = CellCounter()
        self.cell_errors: dict[str, StreamingMoments] = {}
        self.cell_times: dict[str, StreamingMoments] = {}

    @classmethod
    def for_blocks(cls, n_blocks: int) -> "StudyAggregate":
        """The classic study layout: one segment per learning block."""
        return cls(tuple(f"block {i + 1}" for i in range(n_blocks)))

    def add_outcome(
        self, outcome: UserOutcome, cell: Optional[str] = None
    ) -> None:
        """Fold one participant's record into the aggregate."""
        if len(outcome.block_errors) != len(self.segments):
            raise ValueError(
                f"outcome has {len(outcome.block_errors)} segments, "
                f"aggregate expects {len(self.segments)}"
            )
        self.n_users += 1
        if outcome.discovered:
            self.discovered += 1
            self.discovery_time.add(outcome.time_to_discovery_s)
            self.discovery_sketch.add(outcome.time_to_discovery_s)
        self.exploratory_sketch.add(float(outcome.exploratory_movements))
        for index in range(len(self.segments)):
            self.seg_errors[index].add(outcome.block_errors[index])
            self.seg_times[index].add(outcome.block_times[index])
            self.seg_subs[index].add(outcome.block_subs[index])
            if outcome.block_errors[index] == 0:
                self.seg_errorless[index] += 1
            self.seg_time_sketch[index].add(outcome.block_times[index])
        if cell is not None:
            self.cell_users.add(cell)
            # Fixed-order per-user sums over one outcome's block lists:
            # the summation order is pinned by the segment order, and the
            # per-cell means they feed go through StreamingMoments.
            user_error = sum(outcome.block_errors) / len(self.segments)  # reprolint: allow REP007 (fixed segment order, single user)
            user_time = sum(outcome.block_times) / len(self.segments)  # reprolint: allow REP007 (fixed segment order, single user)
            self.cell_errors.setdefault(cell, StreamingMoments()).add(
                user_error
            )
            self.cell_times.setdefault(cell, StreamingMoments()).add(
                user_time
            )

    def merge(self, other: "StudyAggregate") -> "StudyAggregate":
        """Combined aggregate (operands unchanged; segments must match)."""
        if self.segments != other.segments:
            raise ValueError(
                f"segment layouts differ: {self.segments} vs {other.segments}"
            )
        merged = StudyAggregate(self.segments)
        merged.n_users = self.n_users + other.n_users
        merged.discovered = self.discovered + other.discovered
        merged.discovery_time = self.discovery_time.merge(
            other.discovery_time
        )
        merged.discovery_sketch = self.discovery_sketch.merge(
            other.discovery_sketch
        )
        merged.exploratory_sketch = self.exploratory_sketch.merge(
            other.exploratory_sketch
        )
        for index in range(len(self.segments)):
            merged.seg_errors[index] = self.seg_errors[index].merge(
                other.seg_errors[index]
            )
            merged.seg_times[index] = self.seg_times[index].merge(
                other.seg_times[index]
            )
            merged.seg_subs[index] = self.seg_subs[index].merge(
                other.seg_subs[index]
            )
            merged.seg_errorless[index] = (
                self.seg_errorless[index] + other.seg_errorless[index]
            )
            merged.seg_time_sketch[index] = self.seg_time_sketch[
                index
            ].merge(other.seg_time_sketch[index])
        merged.cell_users = self.cell_users.merge(other.cell_users)
        for source in (self, other):
            for cell, moments in source.cell_errors.items():
                existing = merged.cell_errors.get(cell)
                merged.cell_errors[cell] = (
                    moments if existing is None else existing.merge(moments)
                )
            for cell, moments in source.cell_times.items():
                existing = merged.cell_times.get(cell)
                merged.cell_times[cell] = (
                    moments if existing is None else existing.merge(moments)
                )
        return merged

    def late_error_mean(self) -> Optional[float]:
        """Exact grand mean error rate over every segment after the first."""
        if len(self.segments) < 2:
            return None
        combined = reduce(
            lambda a, b: a.merge(b), self.seg_errors[1:], StreamingMoments()
        )
        return combined.mean

    def snapshot(self) -> dict[str, Any]:
        """Canonical JSON-safe state (sorted keys, exact sums).

        ``json.dumps(snapshot(), sort_keys=True)`` is the byte string
        the shard-invariance tests compare: any partition of the same
        population must serialize identically.
        """
        return {
            "segments": list(self.segments),
            "n_users": self.n_users,
            "discovered": self.discovered,
            "discovery_time": self.discovery_time.snapshot(),
            "discovery_sketch": self.discovery_sketch.snapshot(),
            "exploratory_sketch": self.exploratory_sketch.snapshot(),
            "seg_errors": [m.snapshot() for m in self.seg_errors],
            "seg_times": [m.snapshot() for m in self.seg_times],
            "seg_subs": [m.snapshot() for m in self.seg_subs],
            "seg_errorless": list(self.seg_errorless),
            "seg_time_sketch": [
                s.snapshot() for s in self.seg_time_sketch
            ],
            "cells": {
                cell: {
                    "users": self.cell_users.get(cell),
                    "errors": self.cell_errors[cell].snapshot(),
                    "times": self.cell_times[cell].snapshot(),
                }
                for cell in self.cell_users.keys()
            },
        }


def _classic_result(aggregate: StudyAggregate) -> ExperimentResult:
    """The STUDY1 table and notes from a block-segmented aggregate."""
    result = ExperimentResult(
        experiment_id="STUDY1",
        title="Initial user study: discovery and learning blocks",
        columns=(
            "block",
            "error_rate",
            "errorless_users_frac",
            "mean_trial_s",
            "mean_submovements",
        ),
    )
    n_users = aggregate.n_users
    for index in range(len(aggregate.segments)):
        result.add_row(
            index + 1,
            float(aggregate.seg_errors[index].mean or 0.0),
            aggregate.seg_errorless[index] / n_users if n_users else 0.0,
            float(aggregate.seg_times[index].mean or 0.0),
            float(aggregate.seg_subs[index].mean or 0.0),
        )
    median_t = aggregate.discovery_sketch.median or 0.0
    median_m = aggregate.exploratory_sketch.median or 0.0
    result.note(
        f"discovery without hints: {aggregate.discovered}/{n_users} users, "
        f"median {median_t:.1f} s, median {median_m:.0f} "
        "exploratory movements — 'promptly discovered'"
    )
    late_error = aggregate.late_error_mean()
    if late_error is not None:
        result.note(
            f"mean error rate after block 1: {late_error:.3f} wrong "
            "activations/trial — 'nearly errorless' once the relation is "
            "known"
        )
    return result


def aggregate_user_study(
    outcomes: list[UserOutcome], n_blocks: int
) -> ExperimentResult:
    """Fold per-participant outcomes into the STUDY1 table and notes.

    Streams the outcome list through a :class:`StudyAggregate`; the
    sharded runner calls this on reassembled per-user partials, and
    because the aggregate's arithmetic is exact, the result is
    byte-identical to the fully streaming path of
    :func:`run_user_study`.
    """
    aggregate = StudyAggregate.for_blocks(n_blocks)
    for outcome in outcomes:
        aggregate.add_outcome(outcome)
    return _classic_result(aggregate)


def run_user_study(
    seed: int = 0,
    n_users: int = 12,
    n_blocks: int = 4,
    trials_per_block: int = 8,
    config: DeviceConfig | None = None,
    streaming: bool = True,
) -> ExperimentResult:
    """Run the full initial-study protocol over simulated participants.

    With ``streaming=True`` (default) each participant's record is
    folded into the O(1)-memory :class:`StudyAggregate` as it is
    produced and then discarded.  ``streaming=False`` keeps the legacy
    list-based behavior — accumulate every :class:`UserOutcome`, then
    aggregate — and exists as the equivalence oracle: both paths must
    produce bit-identical tables (``tests/test_user_study_scale.py``).
    """
    if streaming:
        aggregate = StudyAggregate.for_blocks(n_blocks)
        for user_seed in user_study_seeds(seed, n_users):
            outcome = run_single_user(
                user_seed, n_blocks, trials_per_block, config
            )
            aggregate.add_outcome(outcome)
        return _classic_result(aggregate)
    outcomes = [
        run_single_user(user_seed, n_blocks, trials_per_block, config)
        for user_seed in user_study_seeds(seed, n_users)
    ]
    return aggregate_user_study(outcomes, n_blocks)


# ---------------------------------------------------------------------------
# population scale: analytic persona trials
# ---------------------------------------------------------------------------

#: Geometry defaults shared with the full device simulation.
_GEOMETRY = DeviceConfig()
#: Reference select-button area (mm²) the glove presets are calibrated
#: for; matches the default board layout's select button.
_SELECT_AREA_MM2 = 40.0


def _fast_discovery(
    rng: np.random.Generator, persona: Persona
) -> tuple[bool, float, int]:
    """Analytic unguided-discovery phase (cf. ``SimulatedUser.discover``).

    The participant waggles until three highlight changes are causally
    observed; low vision makes each observation less likely.
    """
    observe_p = 0.75 if persona.vision == "normal" else 0.55
    needed = 3
    observed = 0
    movements = 0
    elapsed = 0.0
    while observed < needed and elapsed < 60.0:
        movements += 1
        elapsed += 0.5 * float(rng.lognormal(0.0, 0.2)) + 0.15
        elapsed += 0.20 * float(rng.lognormal(0.0, 0.1))
        if rng.random() < observe_p:
            observed += 1
            elapsed += 0.4 * float(rng.lognormal(0.0, 0.2))
    return observed >= needed, elapsed, movements


def simulate_user_fast(
    rng: np.random.Generator,
    persona: Persona,
    scenarios: tuple[Scenario, ...],
) -> UserOutcome:
    """One participant through the battery, sampled analytically.

    Mirrors the structure of ``SimulatedUser.select_entry`` — Fitts
    reaches with noisy endpoints, corrective submovements, impulsive
    commits, verification dwells, glove button fumbles, chunk paging on
    long menus — but draws trial outcomes directly from the motor model
    instead of driving the event-kernel device.  ~10⁴× faster per
    participant, which is what makes million-user studies CPU-bound.
    """
    profile = persona.motor_profile(rng)
    glove = persona.glove_model()
    miss_p = glove.effective_miss_probability(_SELECT_AREA_MM2)
    press_time = profile.button_press_s * glove.dexterity_time_factor
    # The default board layout is right-handed (§5.1): operating it with
    # the left hand slows and destabilizes presses.
    if persona.handedness != "right":
        press_time *= 1.6
        miss_p = min(miss_p + 0.12, 0.9)
    slip_p = min(
        0.02 * persona.tremor_scale * glove.tremor_factor, 0.5
    )

    discovered, discovery_time, movements = _fast_discovery(rng, persona)

    span = _GEOMETRY.span_cm
    chunk = _GEOMETRY.chunk_size or 10
    practice = 0
    seg_errors: list[float] = []
    seg_times: list[float] = []
    seg_subs: list[float] = []
    for scenario in scenarios:
        n_slots = min(scenario.menu_entries, chunk)
        spacing = span / n_slots
        width = max(_GEOMETRY.island_fill * spacing, 0.2)
        n_chunks = max(
            1, math.ceil(scenario.menu_entries / chunk)
        )
        errors = 0
        total_time = 0.0
        total_subs = 0
        for index_distance in scenario_distances(scenario, rng):
            uncertainty = 1.0 + 1.2 * (1.0 + practice) ** (
                -profile.learning_rate * 3.0
            )
            sigma = profile.endpoint_sigma_frac * (width / 2.0) * uncertainty
            trial_time = profile.reaction_time_s * float(
                rng.lognormal(0.0, 0.15)
            )
            subs = 0
            # Page switches toward the target's chunk (long menus).
            page_steps = min(index_distance // chunk, n_chunks - 1)
            for _ in range(page_steps):
                trial_time += profile.reaction_time_s * float(
                    rng.lognormal(0.0, 0.15)
                )
                trial_time += press_time * float(rng.lognormal(0.0, 0.12))
            if scenario.error_recovery:
                # A deliberate wrong activation the participant must
                # back out of: recovery cost lands in the times, not in
                # the error rate (those count *unintended* activations).
                trial_time += profile.reaction_time_s * float(
                    rng.lognormal(0.0, 0.15)
                )
                trial_time += press_time * float(rng.lognormal(0.0, 0.12))
                subs += 1
            distance = max(
                (index_distance % chunk) * spacing, 0.05
            )
            success = False
            for _attempt in range(12):
                subs += 1
                mt = movement_time(
                    profile.fitts_a, profile.fitts_b, distance, width
                )
                mt *= glove.movement_time_factor
                mt = max(mt * float(rng.lognormal(0.0, 0.08)), 0.12)
                trial_time += mt + 0.06
                trial_time += profile.perception_latency_s * float(
                    rng.lognormal(0.0, 0.1)
                )
                endpoint = float(rng.normal(0.0, sigma)) if sigma > 0 else 0.0
                if abs(endpoint) > width / 2.0:
                    # Wrong island: an impulsive user may still commit.
                    if rng.random() < profile.impulsivity:
                        errors += 1
                        trial_time += profile.reaction_time_s * float(
                            rng.lognormal(0.0, 0.15)
                        )
                        trial_time += press_time * float(
                            rng.lognormal(0.0, 0.12)
                        )
                    distance = max(abs(endpoint), 0.05)
                    continue
                if rng.random() >= profile.impulsivity:
                    trial_time += profile.verify_dwell_s * float(
                        rng.lognormal(0.0, 0.2)
                    )
                    if rng.random() < slip_p:
                        distance = max(width / 2.0, 0.05)
                        continue  # tremor pushed it off during the dwell
                for _press in range(4):
                    trial_time += press_time * float(
                        rng.lognormal(0.0, 0.12)
                    )
                    if rng.random() >= miss_p:
                        break
                success = True
                break
            if not success:
                errors += 1
            total_time += trial_time
            total_subs += subs
            practice += 1
        seg_errors.append(errors / scenario.n_trials)
        seg_times.append(total_time / scenario.n_trials)
        seg_subs.append(total_subs / scenario.n_trials)
    return UserOutcome(
        discovered=discovered,
        time_to_discovery_s=discovery_time,
        exploratory_movements=movements,
        block_errors=seg_errors,
        block_times=seg_times,
        block_subs=seg_subs,
    )


def run_user_block(
    seed: int,
    start: int,
    count: int,
    personas: str = "full",
    battery: str = "scrolltest",
) -> StudyAggregate:
    """Run participants ``[start, start+count)`` into one aggregate.

    The population shard unit: every participant's persona and trial
    stream derive from ``(seed, user_index)`` alone, so any block
    partition of the same population merges to identical bytes.
    """
    spec = parse_spec(personas)
    scenarios = resolve_battery(battery)
    aggregate = StudyAggregate(tuple(s.name for s in scenarios))
    for user_index in range(start, start + count):
        persona = persona_for_user(seed, user_index, spec)
        rng = user_rng(seed, user_index)
        outcome = simulate_user_fast(rng, persona, scenarios)
        aggregate.add_outcome(outcome, cell=persona.cell())
    return aggregate


def finalize_scaled_study(
    aggregates: list[StudyAggregate],
    n_users: int,
    personas: str = "full",
    battery: str = "scrolltest",
) -> ExperimentResult:
    """Merge block aggregates into the population-study table.

    One row per battery scenario (speed *and* accuracy measures, per
    ScrollTest), plus notes carrying the discovery arc, the worst
    persona cells and the per-glove marginals — the scenario × persona
    report format of the tinytroupe exemplar, bounded in size no matter
    the population.
    """
    merged = reduce(lambda a, b: a.merge(b), aggregates)
    if merged.n_users != n_users:
        raise ValueError(
            f"aggregates cover {merged.n_users} users, expected {n_users}"
        )
    result = ExperimentResult(
        experiment_id="STUDY1",
        title=(
            f"Population user study: {n_users} personas "
            f"({personas}), battery {battery}"
        ),
        columns=(
            "scenario",
            "users",
            "error_rate",
            "errorless_frac",
            "mean_trial_s",
            "p50_trial_s",
            "p90_trial_s",
            "mean_submovements",
        ),
    )
    for index, name in enumerate(merged.segments):
        result.add_row(
            name,
            merged.n_users,
            float(merged.seg_errors[index].mean or 0.0),
            merged.seg_errorless[index] / merged.n_users,
            float(merged.seg_times[index].mean or 0.0),
            float(merged.seg_time_sketch[index].quantile(0.5) or 0.0),
            float(merged.seg_time_sketch[index].quantile(0.9) or 0.0),
            float(merged.seg_subs[index].mean or 0.0),
        )
    median_t = merged.discovery_sketch.median or 0.0
    result.note(
        f"discovery without hints: {merged.discovered}/{merged.n_users} "
        f"users, median {median_t:.1f} s — 'promptly discovered' holds at "
        "population scale"
    )
    cells = merged.cell_users.keys()
    worst = sorted(
        (
            (-(merged.cell_errors[cell].mean or 0.0), cell)
            for cell in cells
            if merged.cell_users.get(cell) >= max(3, n_users // 1000)
        ),
    )[:5]
    if worst:
        rendered = "; ".join(
            f"{cell} n={merged.cell_users.get(cell)} "
            f"err={-negative_error:.3f}"
            for negative_error, cell in worst
        )
        result.note(f"worst persona cells by error rate: {rendered}")
    by_glove: dict[str, tuple[int, StreamingMoments]] = {}
    for cell in cells:
        glove = cell.split("/")[4]
        users, moments = by_glove.get(glove, (0, StreamingMoments()))
        by_glove[glove] = (
            users + merged.cell_users.get(cell),
            moments.merge(merged.cell_errors[cell]),
        )
    rendered = "; ".join(
        f"{glove} n={users} err={moments.mean or 0.0:.3f}"
        for glove, (users, moments) in sorted(by_glove.items())
    )
    result.note(f"per-glove error rates: {rendered}")
    result.note(
        f"streaming aggregation over {len(cells)} persona cells; "
        "aggregator state is O(1) in the user count"
    )
    return result


def run_scaled_user_study(
    seed: int = 0,
    n_users: int = 10_000,
    personas: str = "full",
    battery: str = "scrolltest",
    users_per_shard: int = 4096,
) -> ExperimentResult:
    """Serial driver of the population study (the ``--jobs 1`` path).

    Walks the identical block decomposition the sharded runner uses and
    folds block aggregates in order, so serial and parallel runs are
    byte-identical by construction.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    aggregates = [
        run_user_block(
            seed,
            start,
            min(users_per_shard, n_users - start),
            personas=personas,
            battery=battery,
        )
        for start in range(0, n_users, users_per_shard)
    ]
    return finalize_scaled_study(
        aggregates, n_users, personas=personas, battery=battery
    )

"""Tests for the stats helpers and the experiment-result harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (
    QuantileSketch,
    StreamingMoments,
    bootstrap_ci,
    linear_regression,
    summarize,
)
from repro.experiments.harness import ExperimentResult


class TestStats:
    def test_summarize_basic(self, rng):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        summary = summarize(values, rng)
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_summarize_single_value(self, rng):
        summary = summarize(np.array([2.0]), rng)
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 2.0

    def test_summarize_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            summarize(np.array([]), rng)

    def test_bootstrap_ci_covers_truth(self, rng):
        values = rng.normal(10.0, 1.0, size=200)
        low, high = bootstrap_ci(values, rng)
        assert low < 10.0 < high
        assert high - low < 1.0

    def test_linear_regression_exact(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 2.0 + 0.5 * x
        intercept, slope, r2 = linear_regression(x, y)
        assert intercept == pytest.approx(2.0)
        assert slope == pytest.approx(0.5)
        assert r2 == pytest.approx(1.0)

    def test_linear_regression_validation(self):
        with pytest.raises(ValueError):
            linear_regression(np.array([1.0]), np.array([1.0]))

    def test_summarize_rejects_nan(self, rng):
        with pytest.raises(ValueError, match="NaN"):
            summarize(np.array([1.0, np.nan, 3.0]), rng)

    def test_bootstrap_rejects_nan_and_empty(self, rng):
        with pytest.raises(ValueError, match="NaN"):
            bootstrap_ci(np.array([np.nan]), rng)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), rng)

    def test_streaming_moments_edge_cases(self):
        empty = StreamingMoments()
        assert empty.mean is None
        assert empty.variance is None
        assert empty.std is None
        single = StreamingMoments()
        single.add(2.5)
        assert single.mean == 2.5
        assert single.variance is None  # ddof=1 needs two samples
        single.add(2.5)
        assert single.variance == 0.0
        with pytest.raises(ValueError, match="NaN"):
            single.add(float("nan"))
        assert single.count == 2  # the rejected value left no trace

    def test_quantile_sketch_edge_cases(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError, match="NaN"):
            sketch.add(float("nan"))
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(low=0.0, high=1.0)
        sketch.add(5.0)
        assert sketch.quantile(0.0) == 5.0
        assert sketch.quantile(1.0) == 5.0

    def test_summary_row_format(self, rng):
        summary = summarize(np.array([1.0, 2.0]), rng)
        row = summary.row("label", unit="s")
        assert "label" in row
        assert "n=2" in row


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(
            experiment_id="TEST",
            title="demo",
            columns=("x", "y"),
        )
        result.add_row(1, 2.5)
        result.add_row(2, 3.5)
        return result

    def test_add_row_arity_checked(self):
        result = self._result()
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = self._result()
        assert result.column("y") == [2.5, 3.5]
        with pytest.raises(KeyError):
            result.column("z")

    def test_table_renders(self):
        result = self._result()
        result.note("a finding")
        text = result.table()
        assert "TEST" in text
        assert "a finding" in text
        assert "2.5" in text

    def test_csv_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "out" / "test.csv"
        result.to_csv(path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,2.5"

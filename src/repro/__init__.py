"""DistScroll reproduction — distance-based one-handed scrolling.

A full-system simulation of Kranz, Holleis & Schmidt's DistScroll
prototype (2005): the Sharp GP2D120 sensor physics, the Smart-Its
hardware platform, the island-mapping firmware, simulated users, and the
competing scrolling techniques of the paper's Related Work — plus the
experiment harness regenerating every figure and open-question study.

Quickstart
----------
>>> from repro import DistScroll, build_menu
>>> device = DistScroll(build_menu({"Messages": ["Inbox"], "Camera": []}))
>>> device.hold_at(15.0)
>>> device.run_for(0.5)
>>> device.highlighted_label  # doctest: +SKIP
'Camera'
"""

from repro.core import (
    DeviceConfig,
    DistScroll,
    MenuCursor,
    MenuEntry,
    Placement,
    ScrollDirection,
    build_menu,
    flatten_paths,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "DeviceConfig",
    "DistScroll",
    "MenuCursor",
    "MenuEntry",
    "Placement",
    "ScrollDirection",
    "build_menu",
    "flatten_paths",
    "Simulator",
    "__version__",
]

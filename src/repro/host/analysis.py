"""Offline analysis of recorded sessions — the researcher's toolbox.

A recorded session (:class:`~repro.host.replay.SessionReplay`) contains
the decoded event stream plus the true hand trajectory.  This module
derives the quantities an HCI paper reports from them:

* **trial segmentation** — split the session at each ``EntryActivated``
  into per-trial slices;
* **movement kinematics** — per-trial peak velocity, path length, and
  submovement count (velocity zero-crossing analysis, the standard
  technique for counting corrective submovements in pointing studies);
* **highlight dynamics** — scrolling rate, direction reversals.

Everything here is pure post-processing: it sees only what a real
logging pipeline would see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import InteractionEvent
from repro.host.replay import SessionReplay

__all__ = ["TrialSlice", "SessionAnalysis", "analyze_session"]


@dataclass(frozen=True)
class TrialSlice:
    """One activation-terminated slice of a session.

    Attributes
    ----------
    start_s, end_s:
        Slice bounds (previous activation → this activation).
    activated_label:
        The leaf that ended the slice.
    duration_s:
        Slice length.
    path_cm:
        Hand path length within the slice.
    peak_velocity_cm_s:
        Largest instantaneous hand speed.
    submovements:
        Number of distinct velocity peaks (corrective submovements show
        up as additional peaks after the primary reach).
    highlight_changes:
        Scroll steps observed within the slice.
    direction_reversals:
        Times the scroll direction flipped (overshoot indicator).
    """

    start_s: float
    end_s: float
    activated_label: str
    duration_s: float
    path_cm: float
    peak_velocity_cm_s: float
    submovements: int
    highlight_changes: int
    direction_reversals: int


@dataclass(frozen=True)
class SessionAnalysis:
    """Aggregate report over all trials of a session."""

    trials: tuple[TrialSlice, ...]
    total_duration_s: float
    total_path_cm: float

    @property
    def n_trials(self) -> int:
        """Number of activation-terminated trials."""
        return len(self.trials)

    @property
    def mean_trial_s(self) -> float:
        """Mean trial duration (0 when no trials)."""
        if not self.trials:
            return 0.0
        return float(np.mean([t.duration_s for t in self.trials]))

    @property
    def mean_submovements(self) -> float:
        """Mean corrective submovement count per trial."""
        if not self.trials:
            return 0.0
        return float(np.mean([t.submovements for t in self.trials]))

    @property
    def mean_peak_velocity(self) -> float:
        """Mean per-trial peak hand speed, cm/s."""
        if not self.trials:
            return 0.0
        return float(np.mean([t.peak_velocity_cm_s for t in self.trials]))

    def summary_rows(self) -> list[str]:
        """Human-readable per-trial summary lines."""
        rows = []
        for i, trial in enumerate(self.trials):
            rows.append(
                f"trial {i + 1}: {trial.activated_label!r} "
                f"{trial.duration_s:5.2f}s path={trial.path_cm:5.1f}cm "
                f"vmax={trial.peak_velocity_cm_s:5.1f}cm/s "
                f"sub={trial.submovements} rev={trial.direction_reversals}"
            )
        return rows


def analyze_session(
    replay: SessionReplay, min_peak_velocity_cm_s: float = 3.0
) -> SessionAnalysis:
    """Segment and analyze a recorded session.

    Parameters
    ----------
    replay:
        The loaded session.
    min_peak_velocity_cm_s:
        Velocity peaks below this are treated as tremor, not
        submovements.
    """
    times = np.array([t for t, _ in replay.poses])
    positions = np.array([d for _, d in replay.poses])

    activations = [
        event
        for event in replay.events
        if event.kind == "EntryActivated"
    ]
    highlights = [
        event for event in replay.events if event.kind == "HighlightChanged"
    ]

    trials: list[TrialSlice] = []
    previous_end = float(times[0]) if times.size else 0.0
    for activation in activations:
        end = float(activation.time)
        trials.append(
            _analyze_slice(
                times,
                positions,
                highlights,
                previous_end,
                end,
                activation,
                min_peak_velocity_cm_s,
            )
        )
        previous_end = end

    return SessionAnalysis(
        trials=tuple(trials),
        total_duration_s=replay.duration(),
        total_path_cm=replay.total_hand_travel_cm(),
    )


def _analyze_slice(
    times: np.ndarray,
    positions: np.ndarray,
    highlights: list[InteractionEvent],
    start: float,
    end: float,
    activation: InteractionEvent,
    min_peak: float,
) -> TrialSlice:
    mask = (times >= start) & (times <= end)
    t = times[mask]
    x = positions[mask]
    if t.size >= 2:
        dt = np.diff(t)
        dt[dt <= 0] = np.nan
        velocity = np.diff(x) / dt
        velocity = velocity[np.isfinite(velocity)]
        path = float(np.sum(np.abs(np.diff(x))))
        peak = float(np.max(np.abs(velocity))) if velocity.size else 0.0
        submovements = _count_velocity_peaks(velocity, min_peak)
    else:
        path, peak, submovements = 0.0, 0.0, 0

    slice_highlights = [
        e for e in highlights if start <= e.time <= end
    ]
    reversals = 0
    last_sign = 0
    for event in slice_highlights:
        step = event.index - event.previous_index
        sign = (step > 0) - (step < 0)
        if sign and last_sign and sign != last_sign:
            reversals += 1
        if sign:
            last_sign = sign

    return TrialSlice(
        start_s=start,
        end_s=end,
        activated_label=activation.label,
        duration_s=end - start,
        path_cm=path,
        peak_velocity_cm_s=peak,
        submovements=submovements,
        highlight_changes=len(slice_highlights),
        direction_reversals=reversals,
    )


def _count_velocity_peaks(velocity: np.ndarray, min_peak: float) -> int:
    """Count |velocity| local maxima above threshold (submovements)."""
    if velocity.size < 3:
        return 1 if velocity.size and np.max(np.abs(velocity)) > min_peak else 0
    speed = np.abs(velocity)
    peaks = 0
    in_movement = False
    for value in speed:
        if not in_movement and value >= min_peak:
            in_movement = True
            peaks += 1
        elif in_movement and value < min_peak * 0.4:
            in_movement = False
    return peaks

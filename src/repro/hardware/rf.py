"""Smart-Its RF link between the DistScroll and a host PC.

The research prototype was chosen to be a "self contained interaction
device that can be wirelessly linked to a PC" (Section 3.2).  The Smart-Its
platform carries a short-range radio used here for logging and for driving
PC-side study software.

The model is a lossy, latency-bearing datagram channel: packets carry an
opaque payload, experience a configurable per-packet loss probability and
a transmission delay derived from the bitrate, and arrive in order (the
Smart-Its radio is a simple narrowband transceiver — no reordering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.kernel import Simulator

__all__ = ["Packet", "RFLink", "RFEndpoint"]


@dataclass(frozen=True)
class Packet:
    """One datagram on the air."""

    source: str
    payload: bytes
    sent_at: float


class RFEndpoint:
    """One side of the link (the device, or the PC)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._link: Optional["RFLink"] = None
        self._on_receive: Optional[Callable[[Packet], None]] = None
        self.received: list[Packet] = []
        self.sent_count = 0

    def on_receive(self, callback: Callable[[Packet], None]) -> None:
        """Register a delivery callback (packets also accumulate in
        :attr:`received` regardless)."""
        self._on_receive = callback

    def send(self, payload: bytes) -> bool:
        """Transmit a datagram to the peer.

        Returns ``True`` if the packet made it onto the air (it may still
        be lost in flight); ``False`` if the endpoint is not attached.
        """
        if self._link is None:
            return False
        self.sent_count += 1
        return self._link._transmit(self, payload)

    def _deliver(self, packet: Packet) -> None:
        self.received.append(packet)
        if self._on_receive is not None:
            self._on_receive(packet)


class RFLink:
    """A point-to-point radio link between two endpoints.

    Parameters
    ----------
    sim:
        Simulator providing the clock and delivery scheduling.
    a, b:
        The two endpoints to connect.
    bitrate_bps:
        Air bitrate; the Smart-Its radio runs around 125 kbit/s.
    loss_rate:
        Per-packet loss probability.
    base_latency_s:
        Fixed processing latency added to the serialization delay.
    rng:
        Generator for loss decisions; ``None`` disables losses.
    """

    #: Fixed per-packet framing overhead (preamble, address, CRC), bytes.
    FRAME_OVERHEAD = 8

    def __init__(
        self,
        sim: Simulator,
        a: RFEndpoint,
        b: RFEndpoint,
        bitrate_bps: float = 125_000.0,
        loss_rate: float = 0.0,
        base_latency_s: float = 0.002,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0,1), got {loss_rate}")
        self._sim = sim
        self.bitrate_bps = float(bitrate_bps)
        self.loss_rate = float(loss_rate)
        self.base_latency_s = float(base_latency_s)
        self._rng = rng
        self._ends = {id(a): b, id(b): a}
        a._link = self
        b._link = self
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_duplicated = 0
        self._last_delivery_time = 0.0
        #: Optional fault hook ``() -> "drop" | "duplicate" | None`` consulted
        #: per packet (see :mod:`repro.faults`).
        self.fault_hook: Optional[Callable[[], Optional[str]]] = None

    def _transmit(self, sender: RFEndpoint, payload: bytes) -> bool:
        peer = self._ends.get(id(sender))
        if peer is None:
            return False
        self.packets_sent += 1
        action = self.fault_hook() if self.fault_hook is not None else None
        if action == "drop":
            self.packets_lost += 1
            return True
        if self._rng is not None and self._rng.random() < self.loss_rate:
            self.packets_lost += 1
            return True
        size_bits = (len(payload) + self.FRAME_OVERHEAD) * 8
        delay = self.base_latency_s + size_bits / self.bitrate_bps
        packet = Packet(source=sender.name, payload=bytes(payload), sent_at=self._sim.now)
        # Enforce in-order delivery: never deliver before a prior packet.
        deliver_at = max(self._sim.now + delay, self._last_delivery_time)
        self._last_delivery_time = deliver_at
        self._sim.schedule_at(deliver_at, lambda: peer._deliver(packet))
        if action == "duplicate":
            # A retransmission the receiver cannot deduplicate: the same
            # frame arrives again one serialization time later, in order.
            self.packets_duplicated += 1
            dup_at = deliver_at + size_bits / self.bitrate_bps
            self._last_delivery_time = dup_at
            self._sim.schedule_at(dup_at, lambda: peer._deliver(packet))
        return True

    @property
    def delivery_ratio(self) -> float:
        """Fraction of transmitted packets not lost (1.0 when none sent)."""
        if self.packets_sent == 0:
            return 1.0
        return 1.0 - self.packets_lost / self.packets_sent

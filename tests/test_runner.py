"""Tests for the parallel experiment runner (repro.runner).

The subsystem's contract: ``--jobs 1`` and ``--jobs N`` produce
byte-identical merged CSVs, sharded execution reproduces the legacy
serial rows exactly, and a cache hit recomputes nothing (proven via the
kernel's global event counter).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENT_RUNNERS, main
from repro.experiments.harness import ExperimentResult
from repro.runner import (
    REGISTRY,
    ResultCache,
    make_shards,
    run_experiments,
    spawn_shard_seeds,
)
from repro.sim import kernel

#: Issue-mandated determinism targets: one unsharded, one param-sharded,
#: one param-sharded with per-row fault machinery.
DETERMINISM_IDS = ["FIG4", "MAP-ISL", "ROB-FAULT"]


class TestRegistry:
    def test_registry_matches_cli_runners(self):
        assert set(REGISTRY) == set(EXPERIMENT_RUNNERS)

    def test_sharded_specs_declare_their_split(self):
        for spec in REGISTRY.values():
            if spec.sharder == "param":
                assert spec.shard_param is not None
                assert spec.shard_values
            if spec.sharder == "users":
                assert spec.user_entry and spec.aggregate_entry

    def test_shard_lists_are_deterministic(self):
        for spec in REGISTRY.values():
            assert make_shards(spec, 3) == make_shards(spec, 3)

    def test_cache_token_distinguishes_specs(self):
        tokens = {spec.cache_token() for spec in REGISTRY.values()}
        assert len(tokens) == len(REGISTRY)


class TestShardSeeds:
    def test_spawn_seeds_deterministic(self):
        assert spawn_shard_seeds(7, 5) == spawn_shard_seeds(7, 5)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_shard_seeds(0, 16)
        assert len(set(seeds)) == 16

    def test_spawn_seeds_stable_under_resharding(self):
        """Shard i's seed depends only on (seed, i), not the shard count."""
        assert spawn_shard_seeds(3, 8)[:4] == spawn_shard_seeds(3, 4)

    def test_different_base_seeds_differ(self):
        assert spawn_shard_seeds(1, 4) != spawn_shard_seeds(2, 4)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self, tmp_path_factory):
        dir1 = tmp_path_factory.mktemp("jobs1")
        dir4 = tmp_path_factory.mktemp("jobs4")
        run_experiments(DETERMINISM_IDS, seed=0, jobs=1, csv_dir=dir1)
        run_experiments(DETERMINISM_IDS, seed=0, jobs=4, csv_dir=dir4)
        return dir1, dir4

    @pytest.mark.parametrize("experiment_id", DETERMINISM_IDS)
    def test_jobs1_and_jobs4_csvs_byte_identical(
        self, serial_and_parallel, experiment_id
    ):
        dir1, dir4 = serial_and_parallel
        csv1 = (dir1 / f"{experiment_id}.csv").read_bytes()
        csv4 = (dir4 / f"{experiment_id}.csv").read_bytes()
        assert csv1 == csv4
        assert len(csv1.splitlines()) > 1  # header + data

    def test_sharded_rows_match_legacy_serial_rows(self):
        """Param-sharding must reproduce the serial sweep exactly."""
        results, _ = run_experiments(["ROB-FAULT"], seed=0, jobs=1)
        legacy = EXPERIMENT_RUNNERS["ROB-FAULT"](0)
        assert results["ROB-FAULT"].csv_bytes() == (
            legacy.normalized().csv_bytes()
        )

    def test_user_sharded_study_matches_legacy(self):
        results, _ = run_experiments(["STUDY1"], seed=0, jobs=1)
        legacy = EXPERIMENT_RUNNERS["STUDY1"](0)
        assert results["STUDY1"].rows == legacy.normalized().rows
        # Aggregate-level notes are recomputed identically after merge.
        for note in legacy.notes:
            assert note in results["STUDY1"].notes

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["NOPE"], seed=0)


class TestCache:
    def test_cache_hit_skips_recomputation(self, tmp_path):
        """Second run must be a pure cache read: zero kernel events."""
        cache = ResultCache(tmp_path / "cache")
        ids = ["FIG4", "MAP-ISL"]
        first, _ = run_experiments(ids, seed=0, jobs=1, cache=cache)
        events_before = kernel.global_events_processed()
        second, bench = run_experiments(ids, seed=0, jobs=1, cache=cache)
        assert kernel.global_events_processed() == events_before
        assert bench["cached_count"] == len(ids)
        for experiment_id in ids:
            assert (
                first[experiment_id].csv_bytes()
                == second[experiment_id].csv_bytes()
            )

    def test_cache_key_depends_on_seed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = REGISTRY["FIG4"]
        assert cache.key(spec, 0) != cache.key(spec, 1)

    def test_cache_roundtrip_preserves_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = REGISTRY["FIG4"]
        results, _ = run_experiments(["FIG4"], seed=0, jobs=1, cache=cache)
        loaded, meta = cache.get(spec, 0)
        assert loaded.csv_bytes() == results["FIG4"].csv_bytes()
        assert loaded.notes == results["FIG4"].notes
        assert meta["wall_s"] > 0
        assert meta["shards"] == 1

    def test_no_cache_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiments(["MAP-ISL"], seed=0, jobs=1, cache=cache)
        events_before = kernel.global_events_processed()
        run_experiments(["MAP-ISL"], seed=0, jobs=1, cache=None)
        assert kernel.global_events_processed() > events_before


class TestBenchReport:
    def test_bench_json_written(self, tmp_path):
        bench_path = tmp_path / "BENCH_runner.json"
        _, bench = run_experiments(
            ["MAP-ISL"], seed=0, jobs=1, bench_path=bench_path
        )
        on_disk = json.loads(bench_path.read_text())
        assert on_disk["jobs"] == 1
        assert on_disk["experiment_count"] == 1
        entry = on_disk["experiments"]["MAP-ISL"]
        assert entry["wall_s"] > 0
        assert entry["events"] > 0
        assert entry["events_per_s"] > 0
        assert entry["cached"] is False
        assert on_disk["speedup_vs_serial"] > 0

    def test_cached_run_reports_original_cost(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiments(["FIG4"], seed=0, jobs=1, cache=cache)
        _, bench = run_experiments(["FIG4"], seed=0, jobs=1, cache=cache)
        entry = bench["experiments"]["FIG4"]
        assert entry["cached"] is True
        assert entry["compute_wall_s"] > 0  # original cost, not this run's


class TestMerge:
    def test_merge_rejects_mismatched_columns(self):
        a = ExperimentResult("X", "t", columns=("a", "b"))
        b = ExperimentResult("X", "t", columns=("a", "c"))
        with pytest.raises(ValueError):
            ExperimentResult.merge([a, b])

    def test_merge_rejects_mismatched_ids(self):
        a = ExperimentResult("X", "t", columns=("a",))
        b = ExperimentResult("Y", "t", columns=("a",))
        with pytest.raises(ValueError):
            ExperimentResult.merge([a, b])

    def test_merge_concatenates_in_order(self):
        parts = []
        for i in range(3):
            part = ExperimentResult("X", "t", columns=("v",))
            part.add_row(i)
            parts.append(part)
        merged = ExperimentResult.merge(parts)
        assert merged.rows == [(0,), (1,), (2,)]

    def test_merge_keeps_only_shared_notes(self):
        a = ExperimentResult("X", "t", columns=("v",))
        b = ExperimentResult("X", "t", columns=("v",))
        a.note("shared")
        a.note("only-a")
        b.note("shared")
        merged = ExperimentResult.merge([a, b])
        assert merged.notes == ["shared"]

    def test_json_roundtrip_preserves_csv_bytes(self):
        result = ExperimentResult("X", "t", columns=("a", "b"))
        result.add_row(1, 0.30000000000000004)
        result.add_row(2, float("1e-300"))
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.csv_bytes() == result.csv_bytes()
        assert restored.rows == result.rows


class TestCLIRunAll:
    def test_run_all_subset(self, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        bench = tmp_path / "BENCH_runner.json"
        code = main(
            [
                "run-all",
                "--only",
                "FIG4,MAP-ISL",
                "--jobs",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--csv-dir",
                str(csv_dir),
                "--bench",
                str(bench),
            ]
        )
        assert code == 0
        assert (csv_dir / "FIG4.csv").exists()
        assert (csv_dir / "MAP-ISL.csv").exists()
        assert bench.exists()
        out = capsys.readouterr().out
        assert "2 experiments" in out
        assert "speedup" in out

    def test_run_all_unknown_id(self, capsys):
        assert main(["run-all", "--only", "NOPE", "--no-cache"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_run_with_jobs_flag(self, capsys):
        assert main(["run", "MAP-ISL", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "MAP-ISL" in out
        assert "merged from 4 shards" in out

    def test_run_all_no_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "run-all",
                "--only",
                "FIG4",
                "--no-cache",
                "--bench",
                str(tmp_path / "b.json"),
            ]
        )
        assert code == 0
        assert not (tmp_path / ".repro_cache").exists()

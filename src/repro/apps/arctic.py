"""The arctic snowmobile-suit scenario (§2, §5.2).

DistScroll's closest ancestor is Rantanen's YoYo interface, built for a
smart snowmobile suit "to prevent accidents and to help survival in case
an accident occurs": a garment computer whose features must be
controllable with thick gloves in the cold.  The paper argues DistScroll
serves that exact use case without the YoYo's mechanical parts or
garment attachment.

:data:`SUIT_MENU_SPEC` is a plausible suit-control menu (heating zones,
GPS beacon, radio, vital signs); :class:`ArcticSession` runs a scripted
set of suit-control tasks with arctic mittens through both the DistScroll
(full closed loop) and the YoYo baseline, reporting the §2 comparison the
paper makes qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.yoyo import YoYoScroller
from repro.core.config import DeviceConfig
from repro.core.device import DistScroll
from repro.core.menu import MenuEntry, build_menu, flatten_paths
from repro.interaction.gloves import GLOVES
from repro.interaction.user import SimulatedUser

__all__ = ["SUIT_MENU_SPEC", "build_suit_menu", "ArcticSession"]

#: The snowmobile suit's control hierarchy.
SUIT_MENU_SPEC: dict = {
    "Heating": {
        "Torso": ["Off", "Low", "Medium", "High"],
        "Hands": ["Off", "Low", "Medium", "High"],
        "Feet": ["Off", "Low", "Medium", "High"],
    },
    "GPS beacon": ["Send position", "SOS mode", "Waypoint"],
    "Radio": ["Call base", "Channel up", "Channel down"],
    "Vitals": ["Heart rate", "Body temp"],
    "Suit status": ["Battery", "Sensors"],
}


def build_suit_menu() -> MenuEntry:
    """The suit-control tree (fresh instance each call)."""
    return build_menu(SUIT_MENU_SPEC, label="suit")


@dataclass
class ArcticSession:
    """Scripted suit-control tasks with arctic mittens.

    Parameters
    ----------
    seed:
        Reproducibility seed.
    n_tasks:
        Suit-control tasks per technique.
    """

    seed: int = 0
    n_tasks: int = 5
    tasks: list[tuple[str, ...]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        paths = flatten_paths(build_suit_menu())
        self.tasks = [
            paths[int(rng.integers(0, len(paths)))] for _ in range(self.n_tasks)
        ]

    def run_distscroll(self) -> dict:
        """Complete the tasks on the full simulated DistScroll."""
        device = DistScroll(
            build_suit_menu(), config=DeviceConfig(), seed=self.seed
        )
        user = SimulatedUser(
            device=device,
            rng=np.random.default_rng(self.seed),
            glove=GLOVES["arctic"],
        )
        user.practice_trials = 25
        device.run_for(0.5)
        times, wrong, ok = [], 0, 0
        for path in self.tasks:
            start = device.now
            task_ok = True
            for label in path:
                labels = [e.label for e in device.firmware.cursor.entries]
                trial = user.select_entry(labels.index(label))
                task_ok = task_ok and trial.success
                wrong += trial.wrong_activations
            times.append(device.now - start)
            ok += int(task_ok)
            while device.depth > 0:
                device.click("back")
        return {
            "technique": "distscroll",
            "mean_task_s": float(np.mean(times)),
            "wrong_activations": wrong,
            "tasks_completed": ok,
            "mechanical_parts": False,
            "garment_attached": False,
        }

    def run_yoyo(self) -> dict:
        """Complete equivalent selections through the YoYo model.

        The YoYo has no hierarchy of its own in [9]; we charge it one
        list selection per menu level, as its wheel would be remapped
        per level.
        """
        rng = np.random.default_rng(self.seed)
        yoyo = YoYoScroller(rng=rng, glove=GLOVES["arctic"])
        menu = build_suit_menu()
        times, errors = [], 0
        for path in self.tasks:
            node = menu
            position = 0
            task_time = 0.0
            for label in path:
                labels = [e.label for e in node.children]
                target = labels.index(label)
                trial = yoyo.select(position, target, len(labels))
                task_time += trial.duration_s
                errors += trial.errors
                node = node.child(label)
                position = 0  # a new level re-zeros the pull mapping
            times.append(task_time)
        return {
            "technique": "yoyo",
            "mean_task_s": float(np.mean(times)),
            "wrong_activations": errors,
            "tasks_completed": self.n_tasks,
            "mechanical_parts": True,
            "garment_attached": True,
        }

    def compare(self) -> list[dict]:
        """Run both techniques and return their reports."""
        return [self.run_distscroll(), self.run_yoyo()]

"""The lint engine: parse a tree once, run every rule, sort findings.

Deliberately simple and fast: one ``ast.parse`` per file, one visitor
pass per (file, rule).  The whole ``src/repro`` tree (~90 modules) lints
in well under a second, which keeps ``repro lint`` viable as a pre-test
CI gate and an editor save hook.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence, Type

from repro.devtools.base import LintContext, Rule
from repro.devtools.findings import Finding, Severity

__all__ = ["LintEngine", "default_rules"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache"})


def default_rules() -> tuple[Type[Rule], ...]:
    """The shipped rule set (imported lazily to avoid cycles)."""
    from repro.devtools.rules import ALL_RULES

    return ALL_RULES


class LintEngine:
    """Runs a set of :class:`Rule` classes over sources.

    Parameters
    ----------
    rules:
        Rule *classes* to instantiate per file; defaults to the shipped
        REP001–REP005 set.
    """

    def __init__(
        self, rules: Optional[Iterable[Type[Rule]]] = None
    ) -> None:
        self.rules: tuple[Type[Rule], ...] = (
            tuple(rules) if rules is not None else default_rules()
        )

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(self, source: str, path: str) -> list[Finding]:
        """Lint one source string as if it lived at relative ``path``."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule="REP000",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                    severity=Severity.ERROR,
                    snippet="",
                )
            ]
        findings: list[Finding] = []
        for rule_cls in self.rules:
            if not rule_cls.applies_to(path):
                continue
            context = LintContext(path=path, source=source)
            findings.extend(rule_cls(context).run(tree))
        return self.sort(findings)

    def lint_file(self, file_path: Path, rel_path: str) -> list[Finding]:
        """Lint one file on disk, reporting it as ``rel_path``."""
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, rel_path)

    def lint_tree(self, root: Path) -> list[Finding]:
        """Lint every ``*.py`` under ``root``; findings sorted stably."""
        root = Path(root)
        findings: list[Finding] = []
        for file_path in sorted(root.rglob("*.py")):
            if _SKIP_DIRS.intersection(file_path.parts):
                continue
            rel_path = file_path.relative_to(root).as_posix()
            findings.extend(self.lint_file(file_path, rel_path))
        return self.sort(findings)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def sort(findings: Sequence[Finding]) -> list[Finding]:
        """Stable presentation order: path, line, column, rule id."""
        return sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )

    def rule_ids(self) -> list[str]:
        """Ids of the configured rules, in registration order."""
        return [rule.rule_id for rule in self.rules]

"""Simulated I2C bus connecting the Smart-Its to its displays.

The two Barton BT96040 chip-on-glass displays "are connected to the
Smart-Its via the I2C-bus" (Section 4.4).  The bus model captures the
properties that matter for interaction latency: a finite clock rate (so a
full display update takes milliseconds, not zero time), 7-bit addressing
with ACK/NAK, and occasional transaction errors that the firmware must
retry.

The bus is synchronous from the caller's perspective — a transaction
returns its result immediately — but reports how long it occupied the bus
so the firmware can account for the time in its loop budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

import numpy as np

__all__ = ["I2CDevice", "I2CBus", "I2CError", "TransferResult"]


class I2CError(RuntimeError):
    """A failed bus transaction (NAK after retries, bus stuck, ...)."""


class I2CDevice(Protocol):
    """Protocol every bus peripheral implements."""

    def i2c_write(self, payload: bytes) -> None:
        """Accept a write transaction payload."""

    def i2c_read(self, length: int) -> bytes:
        """Produce ``length`` bytes for a read transaction."""


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one bus transaction.

    Attributes
    ----------
    ok:
        Whether the transfer eventually succeeded.
    duration_s:
        Bus time consumed, including retries.
    retries:
        Number of retries performed.
    data:
        Bytes read (empty for writes).
    """

    ok: bool
    duration_s: float
    retries: int
    data: bytes = b""


class I2CBus:
    """A single-master I2C bus.

    Parameters
    ----------
    clock_hz:
        SCL frequency; standard mode is 100 kHz, which with 9 bits per
        byte gives ~90 µs per transferred byte.
    error_rate:
        Per-transaction probability of a transient failure (electrical
        noise, clock stretching timeout).  Failures are retried up to
        ``max_retries`` times, as the C firmware does.
    rng:
        Random generator for error injection; ``None`` disables errors.
    """

    def __init__(
        self,
        clock_hz: float = 100_000.0,
        error_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        max_retries: int = 3,
    ) -> None:
        if clock_hz <= 0:
            raise ValueError(f"clock_hz must be positive, got {clock_hz}")
        if not 0.0 <= error_rate < 1.0:
            raise ValueError(f"error_rate must be in [0,1), got {error_rate}")
        self.clock_hz = float(clock_hz)
        self.error_rate = float(error_rate)
        self.max_retries = int(max_retries)
        self._rng = rng
        self._devices: dict[int, I2CDevice] = {}
        self.bytes_transferred = 0
        self.transactions = 0
        #: Optional fault-injection hook ``() -> bool``; ``True`` fails the
        #: current transaction attempt (see :mod:`repro.faults`).
        self.fault_hook: Optional[Callable[[], bool]] = None
        self.injected_errors = 0
        from repro.obs.recorder import Recorder, active_recorder

        recorder = active_recorder()
        self._obs: Optional[Recorder] = (
            recorder if isinstance(recorder, Recorder) else None
        )

    def _obs_complete(self, n_bytes: int, duration: float, retries: int) -> None:
        """Metric bookkeeping for one successful transaction."""
        obs = self._obs
        assert obs is not None
        obs.counter("i2c.transactions")
        obs.counter("i2c.bytes", n_bytes)
        if retries:
            obs.counter("i2c.retries", retries)
        obs.observe("i2c.transaction.duration_s", duration, low=1e-5, high=1.0)

    def attach(self, address: int, device: I2CDevice) -> None:
        """Put a peripheral on the bus at a 7-bit address."""
        if not 0 <= address <= 0x7F:
            raise ValueError(f"I2C address must be 7-bit, got {address:#x}")
        if address in self._devices:
            raise ValueError(f"address {address:#x} already in use")
        self._devices[address] = device

    def detach(self, address: int) -> None:
        """Remove a peripheral (no-op if absent)."""
        self._devices.pop(address, None)

    @property
    def addresses(self) -> list[int]:
        """Sorted list of occupied addresses."""
        return sorted(self._devices)

    def _byte_time(self) -> float:
        # 8 data bits + ACK per byte, plus start/stop overhead folded in.
        return 9.0 / self.clock_hz

    def _transaction_fails(self) -> bool:
        if self.fault_hook is not None and self.fault_hook():
            self.injected_errors += 1
            return True
        if self._rng is None or self.error_rate <= 0.0:
            return False
        return bool(self._rng.random() < self.error_rate)

    def write(self, address: int, payload: bytes) -> TransferResult:
        """Master write: address byte + payload to a peripheral.

        Raises
        ------
        I2CError
            If no device ACKs the address, or retries are exhausted.
        """
        device = self._require(address)
        n_bytes = 1 + len(payload)
        retries = 0
        while True:
            duration = (retries + 1) * n_bytes * self._byte_time()
            if not self._transaction_fails():
                device.i2c_write(bytes(payload))
                self.bytes_transferred += n_bytes
                self.transactions += 1
                if self._obs is not None:
                    self._obs_complete(n_bytes, duration, retries)
                return TransferResult(ok=True, duration_s=duration, retries=retries)
            retries += 1
            if retries > self.max_retries:
                if self._obs is not None:
                    self._obs.counter("i2c.failures")
                raise I2CError(
                    f"write to {address:#x} failed after {self.max_retries} retries"
                )

    def read(self, address: int, length: int) -> TransferResult:
        """Master read: fetch ``length`` bytes from a peripheral."""
        device = self._require(address)
        n_bytes = 1 + length
        retries = 0
        while True:
            duration = (retries + 1) * n_bytes * self._byte_time()
            if not self._transaction_fails():
                data = device.i2c_read(length)
                if len(data) != length:
                    raise I2CError(
                        f"device {address:#x} returned {len(data)} bytes, "
                        f"expected {length}"
                    )
                self.bytes_transferred += n_bytes
                self.transactions += 1
                if self._obs is not None:
                    self._obs_complete(n_bytes, duration, retries)
                return TransferResult(
                    ok=True, duration_s=duration, retries=retries, data=data
                )
            retries += 1
            if retries > self.max_retries:
                if self._obs is not None:
                    self._obs.counter("i2c.failures")
                raise I2CError(
                    f"read from {address:#x} failed after {self.max_retries} retries"
                )

    def _require(self, address: int) -> I2CDevice:
        try:
            return self._devices[address]
        except KeyError:
            raise I2CError(f"no device ACKs address {address:#x}")

"""Tests for the UART link and the PDA add-on variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.menu import build_menu
from repro.hardware.pda import DistScrollAddon, PDAListWidget, build_pda_device
from repro.hardware.serial import UART
from repro.sim.kernel import Simulator


class TestUART:
    def test_bytes_delivered_in_order(self, sim):
        uart = UART(sim)
        uart.write(bytes(range(10)))
        sim.run()
        assert uart.read() == bytes(range(10))

    def test_baud_limits_throughput(self, sim):
        uart = UART(sim, baud=9600)
        uart.write(b"x" * 96)  # 960 bit times ~ 0.1 s
        sim.run_until(0.05)
        early = uart.pending
        sim.run_until(0.2)
        late = uart.pending
        assert early < late == 96

    def test_back_to_back_writes_queue_on_the_line(self, sim):
        uart = UART(sim, baud=9600)
        uart.write(b"aa")
        busy = uart.write(b"bb")
        assert busy == pytest.approx(4 * uart.byte_time_s, rel=0.01)

    def test_isr_callback(self, sim):
        uart = UART(sim)
        got = []
        uart.on_byte(got.append)
        uart.write(b"\x01\x02")
        sim.run()
        assert got == [1, 2]

    def test_framing_errors_injected(self, sim):
        uart = UART(
            sim, framing_error_rate=0.5, rng=np.random.default_rng(0)
        )
        uart.write(bytes(200))
        sim.run()
        received = uart.read()
        assert uart.bytes_corrupted > 50
        assert sum(1 for b in received if b != 0) == uart.bytes_corrupted

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            UART(sim, baud=0)
        with pytest.raises(ValueError):
            UART(sim, framing_error_rate=1.0)


class TestAddonProtocol:
    def test_frames_stream_at_report_rate(self):
        sim = Simulator(seed=1)
        uart = UART(sim)
        addon = DistScrollAddon(sim, uart, report_hz=50.0)
        sim.run_until(1.0)
        # 50 Hz nominal; float accumulation may defer the boundary tick.
        assert 49 <= addon.frames_sent <= 51
        data = uart.read()
        assert len(data) == addon.frames_sent * 4
        assert data[0] == 0xA5

    def test_checksum_valid(self):
        sim = Simulator(seed=1)
        uart = UART(sim)
        DistScrollAddon(sim, uart, report_hz=50.0)
        sim.run_until(0.2)
        data = uart.read()
        for i in range(0, len(data), 4):
            sync, hi, lo, checksum = data[i : i + 4]
            assert sync == 0xA5
            assert (hi + lo) & 0xFF == checksum

    def test_stop_halts_stream(self):
        sim = Simulator(seed=1)
        uart = UART(sim)
        addon = DistScrollAddon(sim, uart)
        sim.run_until(0.5)
        addon.stop()
        sent = addon.frames_sent
        sim.run_until(2.0)
        assert addon.frames_sent == sent


class TestPDADriver:
    def _pair(self, n=11, seed=5, noisy=True):
        menu = build_menu([f"Row {i}" for i in range(n)])
        return build_pda_device(menu, seed=seed, noisy=noisy)

    def test_distance_drives_highlight(self):
        sim, addon, driver = self._pair()
        sim.run_until(0.5)
        for target in (10, 0, 5):
            addon.set_distance(driver.aim_distance_for_index(target))
            sim.run_until(sim.now + 0.5)
            assert driver.highlighted_index == target

    def test_widget_shows_eleven_rows(self):
        sim, addon, driver = self._pair(n=11)
        sim.run_until(0.5)
        rows = driver.widget.visible_labels()
        assert len(rows) == PDAListWidget.VISIBLE_ROWS
        assert sum(1 for r in rows if r) == 11

    def test_select_and_back(self):
        menu = build_menu({"A": ["a1", "a2"], "B": [], "C": []})
        sim, addon, driver = build_pda_device(menu, seed=2)
        sim.run_until(0.5)
        addon.set_distance(driver.aim_distance_for_index(0))
        sim.run_until(sim.now + 0.5)
        assert driver.highlighted_index == 0
        driver.press_select()
        assert driver.cursor.depth == 1
        assert driver.widget.title == "A"
        driver.press_back()
        assert driver.cursor.depth == 0

    def test_leaf_activation_callback(self):
        activated = []
        menu = build_menu(["A", "B", "C"])
        sim, addon, driver = build_pda_device(menu, seed=2)
        driver.cursor.on_activate = activated.append
        sim.run_until(0.5)
        addon.set_distance(driver.aim_distance_for_index(1))
        sim.run_until(sim.now + 0.5)
        driver.press_select()
        assert [e.label for e in activated] == ["B"]

    def test_corrupted_frames_dropped_and_resynced(self):
        sim, addon, driver = self._pair(noisy=True)
        # Crank up the corruption on the wire.
        driver.uart.framing_error_rate = 0.1
        driver.uart._rng = np.random.default_rng(7)
        sim.run_until(3.0)
        assert driver.frames_bad > 0
        assert driver.frames_ok > driver.frames_bad
        # Selection still works through the lossy link.
        addon.set_distance(driver.aim_distance_for_index(8))
        sim.run_until(sim.now + 1.0)
        assert driver.highlighted_index == 8

    def test_gap_holds_selection(self):
        sim, addon, driver = self._pair()
        sim.run_until(0.5)
        addon.set_distance(driver.aim_distance_for_index(5))
        sim.run_until(sim.now + 0.5)
        d5 = driver.aim_distance_for_index(5)
        d6 = driver.aim_distance_for_index(6)
        addon.set_distance((d5 + d6) / 2.0)  # the gap between islands
        sim.run_until(sim.now + 1.0)
        assert driver.highlighted_index == 5

"""SENS-ENV — calibration invariance across clothing and light (§4.2)."""

from __future__ import annotations

from repro.experiments import run_sensor_env


def test_bench_sensor_environment(benchmark, report):
    result = benchmark.pedantic(
        run_sensor_env,
        kwargs={"seed": 0, "readings_per_point": 8},
        rounds=1,
        iterations=1,
    )
    report(result)
    surfaces = result.column("surface")
    devs = result.column("max_dev_vs_ref_pct")
    benign = [d for s, d in zip(surfaces, devs) if "mirror" not in s and "vest" not in s]
    assert max(benign) < 15.0

"""EXT-POWER — battery life of the 9 V prototype by workload.

"The device is powered by a 9 Volt block battery" and the case opens
specifically for battery changes (§4.1) — so how long does a charge
last?  The power model books the PIC's run current, both displays, and
an RF transmit pulse per event; this experiment integrates it over three
representative workloads and extrapolates to full-battery life:

* **idle** — device on, held still, nobody scrolling;
* **browsing** — a user continuously performing menu selections
  (RF event bursts, display rewrites);
* **gaming** — the §5.2 altitude game (30 Hz rendering, no RF).

Extrapolation is honest bookkeeping: measured mAh over a simulated
window scaled to the 550 mAh capacity.
"""

from __future__ import annotations

import numpy as np

from repro.apps.game import AltitudeGame
from repro.core.device import DistScroll
from repro.core.menu import build_menu
from repro.experiments.harness import ExperimentResult
from repro.hardware.board import build_distscroll_board
from repro.interaction.tasks import random_targets
from repro.interaction.user import SimulatedUser
from repro.sim.kernel import Simulator

__all__ = ["run_power"]


def run_power(
    seed: int = 0, window_s: float = 60.0
) -> ExperimentResult:
    """Measure draw over a window per workload; extrapolate battery life."""
    result = ExperimentResult(
        experiment_id="EXT-POWER",
        title="9 V battery life by workload",
        columns=(
            "workload",
            "mean_current_ma",
            "battery_life_h",
            "rf_packets_per_min",
        ),
    )
    for workload, runner in (
        ("idle", _run_idle),
        ("browsing", _run_browsing),
        ("gaming", _run_gaming),
    ):
        drawn_mah, packets, elapsed = runner(seed, window_s)
        mean_ma = drawn_mah / (elapsed / 3600.0)
        capacity = 550.0
        life_h = capacity / mean_ma if mean_ma > 0 else float("inf")
        result.add_row(
            workload,
            mean_ma,
            life_h,
            packets / (elapsed / 60.0),
        )
    result.note(
        "the dominant consumers are the PIC run current and the two "
        "displays; RF bursts only matter while actively scrolling — a "
        "9 V block comfortably covers a full study day"
    )
    return result


def _run_idle(seed: int, window_s: float) -> tuple[float, int, float]:
    device = DistScroll(build_menu([f"I{i}" for i in range(8)]), seed=seed)
    device.hold_at(15.0)
    start_mah = device.board.battery.total_drawn_mah
    start_packets = device.board.rf_link.packets_sent
    device.run_for(window_s)
    return (
        device.board.battery.total_drawn_mah - start_mah,
        device.board.rf_link.packets_sent - start_packets,
        window_s,
    )


def _run_browsing(seed: int, window_s: float) -> tuple[float, int, float]:
    device = DistScroll(build_menu([f"I{i}" for i in range(10)]), seed=seed)
    rng = np.random.default_rng(seed)
    user = SimulatedUser(device=device, rng=rng)
    user.practice_trials = 30
    device.run_for(0.5)
    start_mah = device.board.battery.total_drawn_mah
    start_packets = device.board.rf_link.packets_sent
    start_time = device.now
    targets = random_targets(10, 1000, rng, min_separation=2)
    for target in targets:
        if device.now - start_time >= window_s:
            break
        user.select_entry(target)
        while device.depth > 0:
            device.click("back")
    elapsed = device.now - start_time
    return (
        device.board.battery.total_drawn_mah - start_mah,
        device.board.rf_link.packets_sent - start_packets,
        elapsed,
    )


def _run_gaming(seed: int, window_s: float) -> tuple[float, int, float]:
    sim = Simulator(seed=seed)
    board = build_distscroll_board(sim)
    game = AltitudeGame(board)
    rng = np.random.default_rng(seed)
    start_mah = board.battery.total_drawn_mah
    start_packets = board.rf_link.packets_sent
    start_time = sim.now
    # A hand waggling plus occasional fire; the game draws per tick via
    # the display/mcu model... the game loop itself does not book MCU
    # power (it is not the menu firmware), so book it explicitly here
    # the way the firmware does: run current + displays.
    while sim.now - start_time < window_s:
        board.set_pose(distance_cm=float(rng.uniform(7.0, 26.0)))
        if rng.random() < 0.3:
            game.fire()
        step = 0.5
        board.mcu.consume_power(step)
        board.battery.draw(6.0, step)  # both displays
        sim.run_until(sim.now + step)
    elapsed = sim.now - start_time
    return (
        board.battery.total_drawn_mah - start_mah,
        board.rf_link.packets_sent - start_packets,
        elapsed,
    )
